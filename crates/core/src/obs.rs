//! Simulation-side observability state: what the [`World`] records when
//! the `obs` config block is enabled, and how it folds into an
//! [`ObsReport`].
//!
//! Everything here is constructed only when `SystemConfig::obs.enabled`
//! is true; a disabled run allocates none of this state and executes the
//! exact pre-observability instruction stream.
//!
//! [`World`]: crate::simulation::World

use bpp_obs::{ObsConfig, ObsReport, Timeline, TraceRing};
use bpp_sim::Welford;

/// Per-run instrumentation state owned by the `World`.
#[derive(Debug, Clone)]
pub(crate) struct ObsState {
    /// The knobs this state was built from (stride feeds the engine probe).
    pub(crate) cfg: ObsConfig,
    /// Distinct-pages-in-queue, sampled at every slot boundary.
    queue_depth: Timeline,
    /// Queueing delay of every served pull (submit → pull slot).
    pull_wait: Welford,
    /// Structured events: saturation transitions, retry resends, ….
    trace: TraceRing,
    /// Virtual-Client requests that passed the threshold filter.
    pub(crate) vc_requests_sent: u64,
    /// Virtual-Client misses the threshold filter swallowed.
    pub(crate) vc_requests_filtered: u64,
    /// Fleet-wide cumulative hit rate, sampled at every slot boundary;
    /// `None` under the aggregate population so its report keys (and the
    /// serialized bytes) only exist when a fleet runs.
    fleet_hit_rate: Option<Timeline>,
    /// Measured Client cumulative cache hit rate, sampled at every slot
    /// boundary; `None` unless the `mc_hit_rate` obs knob is on.
    mc_hit_rate: Option<Timeline>,
    /// Server availability (0 up / 1 down / 2 recovering), sampled at
    /// every slot boundary; `None` unless the crash domain is active.
    fault_state: Option<Timeline>,
    /// Per-disk cumulative share of push slots (padding included — padding
    /// is bandwidth charged to its disk), sampled at every slot boundary;
    /// `None` unless the `disk_share` obs knob is on.
    disk_share: Option<DiskShare>,
    /// Per-channel instrumentation of the K-channel extension; `None`
    /// unless `num_channels > 1`, so single-channel reports keep their
    /// exact pre-extension key set.
    channels: Option<ChannelObs>,
}

/// Per-channel timelines of the K-channel world: shard queue depths, the
/// cumulative share of push slots each channel carries, and (when a
/// channel-fault layer runs) each channel's phase-shifted brownout state.
#[derive(Debug, Clone)]
struct ChannelObs {
    /// One `server.ch<k>.queue_depth` timeline per pull shard.
    depth: Vec<Timeline>,
    /// Push slots (pages and padding) carried by each channel so far.
    push_counts: Vec<u64>,
    /// Push slots carried overall (the share denominator).
    push_total: u64,
    /// One `broadcast.ch<k>.share` timeline per channel.
    share: Vec<Timeline>,
    /// One `fault.ch<k>.state` timeline per channel (0 clear / 1 browned
    /// out); empty when no channel-fault layer is configured.
    fault_state: Vec<Timeline>,
}

/// Running per-disk push-slot counters with one cumulative-share timeline
/// per broadcast disk.
#[derive(Debug, Clone)]
struct DiskShare {
    /// Push slots charged to each disk so far.
    counts: Vec<u64>,
    /// Push slots charged overall (the denominator).
    total: u64,
    /// One `broadcast.disk<k>.share` timeline per disk.
    timelines: Vec<Timeline>,
}

impl ObsState {
    pub(crate) fn new(cfg: ObsConfig) -> Self {
        ObsState {
            cfg,
            queue_depth: Timeline::new(cfg.timeline_stride),
            pull_wait: Welford::new(),
            trace: TraceRing::new(cfg.trace_capacity as usize),
            vc_requests_sent: 0,
            vc_requests_filtered: 0,
            fleet_hit_rate: None,
            mc_hit_rate: None,
            fault_state: None,
            disk_share: None,
            channels: None,
        }
    }

    /// Start the per-channel timelines of the K-channel extension.
    /// `with_fault_state` adds the per-channel brownout-state timelines
    /// (only meaningful when a channel-fault layer runs).
    pub(crate) fn enable_channels(&mut self, num: usize, with_fault_state: bool) {
        self.channels = Some(ChannelObs {
            depth: vec![Timeline::new(self.cfg.timeline_stride); num],
            push_counts: vec![0; num],
            push_total: 0,
            share: vec![Timeline::new(self.cfg.timeline_stride); num],
            fault_state: if with_fault_state {
                vec![Timeline::new(self.cfg.timeline_stride); num]
            } else {
                Vec::new()
            },
        });
    }

    /// Sample every shard's queue depth at a slot boundary.
    pub(crate) fn on_slot_channel_depths(&mut self, now: f64, depths: &[usize]) {
        if let Some(ch) = &mut self.channels {
            for (tl, &d) in ch.depth.iter_mut().zip(depths) {
                tl.update(now, d as f64);
            }
        }
    }

    /// Charge one push slot (page or padding) to channel `k`.
    pub(crate) fn on_push_slot_channel(&mut self, k: usize) {
        if let Some(ch) = &mut self.channels {
            if k < ch.push_counts.len() {
                ch.push_counts[k] += 1;
                ch.push_total += 1;
            }
        }
    }

    /// Sample every channel's cumulative push-slot share at a slot
    /// boundary. Nothing is recorded before the first push slot.
    pub(crate) fn on_slot_channel_share(&mut self, now: f64) {
        if let Some(ch) = &mut self.channels {
            if ch.push_total > 0 {
                for (tl, &n) in ch.share.iter_mut().zip(&ch.push_counts) {
                    tl.update(now, n as f64 / ch.push_total as f64);
                }
            }
        }
    }

    /// Sample every channel's brownout state (1 browned out, 0 clear) at a
    /// slot boundary; a no-op when the fault-state timelines are off.
    pub(crate) fn on_slot_channel_fault(&mut self, now: f64, states: &[f64]) {
        if let Some(ch) = &mut self.channels {
            for (tl, &s) in ch.fault_state.iter_mut().zip(states) {
                tl.update(now, s);
            }
        }
    }

    /// Start the fleet hit-rate timeline (fleet populations only).
    pub(crate) fn enable_fleet(&mut self) {
        self.fleet_hit_rate = Some(Timeline::new(self.cfg.timeline_stride));
    }

    /// Start the MC hit-rate timeline (`mc_hit_rate` knob only).
    pub(crate) fn enable_mc_hit_rate(&mut self) {
        self.mc_hit_rate = Some(Timeline::new(self.cfg.timeline_stride));
    }

    /// Start the server-availability timeline (crash domain only).
    pub(crate) fn enable_fault_state(&mut self) {
        self.fault_state = Some(Timeline::new(self.cfg.timeline_stride));
    }

    /// Start the per-disk slot-mix timelines (`disk_share` knob only).
    pub(crate) fn enable_disk_share(&mut self, num_disks: usize) {
        self.disk_share = Some(DiskShare {
            counts: vec![0; num_disks],
            total: 0,
            timelines: vec![Timeline::new(self.cfg.timeline_stride); num_disks],
        });
    }

    /// Charge one push slot (page or padding) to `disk`.
    pub(crate) fn on_push_slot_disk(&mut self, disk: usize) {
        if let Some(ds) = &mut self.disk_share {
            if disk < ds.counts.len() {
                ds.counts[disk] += 1;
                ds.total += 1;
            }
        }
    }

    /// Sample every disk's cumulative slot share at a slot boundary.
    /// Nothing is recorded before the first push slot (no denominator).
    pub(crate) fn on_slot_disk_share(&mut self, now: f64) {
        if let Some(ds) = &mut self.disk_share {
            if ds.total > 0 {
                for (tl, &n) in ds.timelines.iter_mut().zip(&ds.counts) {
                    tl.update(now, n as f64 / ds.total as f64);
                }
            }
        }
    }

    /// Sample the fleet's cumulative hit rate at a slot boundary.
    pub(crate) fn on_slot_fleet(&mut self, now: f64, hit_rate: f64) {
        if let Some(tl) = &mut self.fleet_hit_rate {
            tl.update(now, hit_rate);
        }
    }

    /// Sample the MC's cumulative cache hit rate at a slot boundary.
    pub(crate) fn on_slot_mc_hit_rate(&mut self, now: f64, hit_rate: f64) {
        if let Some(tl) = &mut self.mc_hit_rate {
            tl.update(now, hit_rate);
        }
    }

    /// Sample the server availability state at a slot boundary.
    pub(crate) fn on_slot_fault_state(&mut self, now: f64, state: f64) {
        if let Some(tl) = &mut self.fault_state {
            tl.update(now, state);
        }
    }

    /// Sample the pull-queue depth at a slot boundary.
    pub(crate) fn on_slot(&mut self, now: f64, depth: usize) {
        self.queue_depth.update(now, depth as f64);
    }

    /// Record the queueing delay of one served pull request.
    pub(crate) fn record_pull_wait(&mut self, wait: f64) {
        self.pull_wait.record(wait);
    }

    /// Append a structured trace event.
    pub(crate) fn trace(&mut self, t: f64, label: &'static str, value: f64) {
        self.trace.push(t, label, value);
    }

    /// Fold this state into `report`, sealing timelines at `t_end`.
    pub(crate) fn report_into(&self, t_end: f64, report: &mut ObsReport) {
        report.add_timeline("server.queue_depth", self.queue_depth.sealed(t_end));
        if let Some(tl) = &self.fleet_hit_rate {
            report.add_timeline("client.fleet.hit_rate", tl.sealed(t_end));
        }
        if let Some(tl) = &self.mc_hit_rate {
            report.add_timeline("client.mc.hit_rate", tl.sealed(t_end));
        }
        if let Some(tl) = &self.fault_state {
            report.add_timeline("fault.state", tl.sealed(t_end));
        }
        if let Some(ds) = &self.disk_share {
            for (k, tl) in ds.timelines.iter().enumerate() {
                report.add_timeline(&format!("broadcast.disk{k}.share"), tl.sealed(t_end));
            }
        }
        if let Some(ch) = &self.channels {
            for (k, tl) in ch.depth.iter().enumerate() {
                report.add_timeline(&format!("server.ch{k}.queue_depth"), tl.sealed(t_end));
            }
            for (k, tl) in ch.share.iter().enumerate() {
                report.add_timeline(&format!("broadcast.ch{k}.share"), tl.sealed(t_end));
            }
            for (k, tl) in ch.fault_state.iter().enumerate() {
                report.add_timeline(&format!("fault.ch{k}.state"), tl.sealed(t_end));
            }
        }
        let m = &mut report.metrics;
        m.add("server.pull_wait.count", self.pull_wait.count());
        if self.pull_wait.count() > 0 {
            m.gauge("server.pull_wait.mean", self.pull_wait.mean());
            m.gauge("server.pull_wait.max", self.pull_wait.max());
        }
        report.trace = self.trace.clone();
    }
}
