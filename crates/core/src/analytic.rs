//! Closed-form comparators.
//!
//! Two analytic models cross-check the simulator:
//!
//! * [`push_response`] — the exact expected Pure-Push response time: the
//!   probability-weighted mean next-arrival distance over the broadcast
//!   program, with the ideal cache contents serving for free. At Noise = 0
//!   this must agree with the simulated Pure-Push steady state to within
//!   statistical noise (an end-to-end validation of the whole event path).
//! * [`pull_mm1k`] — an M/M/1/K approximation of the pull channel in the
//!   spirit of the analytical work the paper compares against (\[Imie94c\],
//!   \[Wong88\]). The paper explicitly notes its environment "is not
//!   accurately captured by an M/M/1 queue" (caching and coalescing make
//!   arrivals non-memoryless, service is slotted); the model is still
//!   useful at light load and quantifies *how far* the real system departs
//!   from it as saturation sets in.

use crate::config::{Algorithm, CachePolicy, SystemConfig};
use bpp_broadcast::{
    analysis::analyse, assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, PageId,
};
use bpp_cache::StaticScoreCache;
use bpp_workload::Zipf;

/// Build the broadcast program exactly as the simulator does (offset, chop).
pub fn build_program(cfg: &SystemConfig) -> BroadcastProgram {
    let ranking = identity_ranking(cfg.db_size);
    let spec = DiskSpec::new(cfg.disk_sizes.clone(), cfg.rel_freqs.clone());
    let mut a = if cfg.offset {
        Assignment::with_offset(&ranking, &spec, cfg.cache_size)
    } else {
        Assignment::from_ranking(&ranking, &spec)
    };
    a.chop(cfg.chop);
    BroadcastProgram::generate(&a, cfg.db_size)
}

/// Ideal steady-state cache contents for `cfg` against `program` under the
/// effective cache policy (P for Pure-Pull, PIX otherwise) — the pages a
/// perfectly warmed client holds, which both the closed form and the
/// bpp-verify analytic cross-check treat as free hits.
pub fn ideal_cache(cfg: &SystemConfig, program: &BroadcastProgram) -> Vec<PageId> {
    let zipf = Zipf::new(cfg.db_size, cfg.zipf_theta);
    let probs = zipf.probs();
    let freqs: Vec<usize> = (0..cfg.db_size)
        .map(|i| program.frequency(PageId(i as u32)))
        .collect();
    let cache = match cfg.effective_cache_policy() {
        CachePolicy::P => StaticScoreCache::p(cfg.cache_size, probs),
        _ => StaticScoreCache::pix(cfg.cache_size, probs, &freqs),
    };
    cache
        .ideal_content()
        .into_iter()
        .map(|i| PageId(i as u32))
        .collect()
}

/// Expected Pure-Push steady-state response time (broadcast units) for a
/// Noise-0 client with an ideally warmed cache. Cache hits count as zero,
/// exactly like the simulator's metric.
pub fn push_response(cfg: &SystemConfig) -> f64 {
    let program = build_program(cfg);
    let zipf = Zipf::new(cfg.db_size, cfg.zipf_theta);
    let probs = zipf.probs(); // Noise=0: item i has rank i
    let cached = ideal_cache(cfg, &program);
    analyse(&program, probs, &cached).expected_response
}

/// Output of the M/M/1/K pull-channel model.
#[derive(Debug, Clone, Copy)]
pub struct PullAnalysis {
    /// Offered load ρ = λ/μ.
    pub rho: f64,
    /// Probability an arriving request finds the queue full (is dropped).
    pub block_prob: f64,
    /// Mean number of queued requests.
    pub mean_queue: f64,
    /// Mean response time of an *accepted* request (wait + 1 service slot).
    pub response: f64,
}

/// M/M/1/K model of the pull channel.
///
/// * λ: request arrival rate = VC miss rate
///   (`ThinkTimeRatio / MC_ThinkTime × miss-fraction`); the MC's own ~1/20
///   per unit is ignored, as is coalescing (both noted divergences).
/// * μ: service rate = `effective_pull_bw` pages per broadcast unit
///   (1 for Pure-Pull).
/// * K: `ServerQSize` waiting room plus the one in service.
pub fn pull_mm1k(cfg: &SystemConfig) -> PullAnalysis {
    let zipf = Zipf::new(cfg.db_size, cfg.zipf_theta);
    let steady_hit_mass = zipf.head_mass(cfg.cache_size);
    let miss_frac = 1.0 - cfg.steady_state_perc * steady_hit_mass;
    let lambda = cfg.think_time_ratio / cfg.mc_think_time * miss_frac;
    let mu = match cfg.algorithm {
        Algorithm::PurePull => 1.0,
        _ => cfg.effective_pull_bw(),
    };
    mm1k(lambda, mu, cfg.server_queue_size)
}

/// Textbook M/M/1/K: arrival rate `lambda`, service rate `mu`, system
/// capacity `k + 1` (k waiting + 1 in service).
pub fn mm1k(lambda: f64, mu: f64, k: usize) -> PullAnalysis {
    assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
    let cap = k + 1; // system capacity N
    let rho = lambda / mu;
    let n = cap as f64;
    let (block_prob, mean_queue) = if (rho - 1.0).abs() < 1e-12 {
        // ρ = 1: uniform distribution over 0..=N.
        (1.0 / (n + 1.0), n / 2.0)
    } else {
        let rn1 = rho.powi(cap as i32 + 1);
        let p_block = rho.powi(cap as i32) * (1.0 - rho) / (1.0 - rn1);
        let l = rho / (1.0 - rho) - (n + 1.0) * rn1 / (1.0 - rn1);
        (p_block, l)
    };
    let accepted = lambda * (1.0 - block_prob);
    let response = if accepted > 0.0 {
        mean_queue / accepted
    } else {
        1.0 / mu
    };
    PullAnalysis {
        rho,
        block_prob,
        mean_queue,
        response,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, MeasurementProtocol};
    use crate::runner::run_steady_state;

    #[test]
    fn push_response_matches_simulation() {
        // End-to-end validation: the closed form and the event-driven
        // simulator must agree for Pure-Push at Noise 0.
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::PurePush;
        let analytic = push_response(&cfg);
        let mut proto = MeasurementProtocol::quick();
        proto.max_accesses = 20_000;
        proto.rel_precision = 0.02;
        proto.min_batches = 10;
        let sim = run_steady_state(&cfg, &proto);
        let rel = (sim.mean_response - analytic).abs() / analytic;
        assert!(
            rel < 0.10,
            "analytic {analytic:.1} vs simulated {:.1} (rel {rel:.3})",
            sim.mean_response
        );
    }

    #[test]
    fn paper_config_push_response_magnitude() {
        let mut cfg = SystemConfig::paper_default();
        cfg.algorithm = Algorithm::PurePush;
        let r = push_response(&cfg);
        // Our reproduction of the Pure-Push flat line; the paper reports
        // 278 bu on the authors' generator. Locked here as a regression
        // guard on the whole program/caching pipeline.
        assert!(r > 100.0 && r < 400.0, "push response {r}");
    }

    #[test]
    fn mm1k_light_load_is_nearly_ideal() {
        let a = mm1k(0.1, 1.0, 100);
        assert!(a.block_prob < 1e-6);
        assert!(a.response < 1.2);
    }

    #[test]
    fn mm1k_overload_blocks_heavily() {
        let a = mm1k(5.0, 1.0, 100);
        assert!(a.block_prob > 0.7, "block {}", a.block_prob);
        assert!(a.mean_queue > 90.0);
    }

    #[test]
    fn mm1k_critical_load_is_finite() {
        let a = mm1k(1.0, 1.0, 10);
        assert!((a.block_prob - 1.0 / 12.0).abs() < 1e-9);
        assert!((a.mean_queue - 5.5).abs() < 1e-9);
    }

    #[test]
    fn pull_model_tracks_think_time_ratio() {
        let mut cfg = SystemConfig::paper_default();
        cfg.algorithm = Algorithm::PurePull;
        cfg.think_time_ratio = 10.0;
        let light = pull_mm1k(&cfg);
        cfg.think_time_ratio = 250.0;
        let heavy = pull_mm1k(&cfg);
        assert!(light.block_prob < heavy.block_prob);
        assert!(light.response < heavy.response);
    }
}
