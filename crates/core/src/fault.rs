//! Runtime fault injection: the lossy channels and brownout windows of
//! [`FaultConfig`](crate::config::FaultConfig), plus the per-run
//! [`FaultReport`] that makes degradation observable in experiment output.
//!
//! The injection points are deliberately few and all deterministic:
//!
//! * **frontchannel** — one coin per page-carrying slot on the
//!   `FAULT_LOSS` RNG stream decides whether every listener misses the
//!   page ([`FaultLayer::page_lost`]);
//! * **backchannel** — one coin per sent request on the `FAULT_REQ` stream
//!   ([`FaultLayer::deliver`]), then a clock check against the brownout
//!   window (no randomness), then the ordinary queue admission path;
//! * **client retries** and **server degradation** live in `bpp-client` /
//!   `bpp-server`; their counters are folded into the same report.
//!
//! The crash–recovery domain adds two more artifacts here: the per-run
//! [`CrashReport`] (embedded in the fault report when crashes are
//! configured) and the [`ConservationLedger`], the auditor's view of where
//! every sent request ended up. The ledger is the hard-failure backstop
//! for chaos runs: requests may be lost, browned out, orphaned, rejected,
//! dropped, served, or still in flight — but they may never simply
//! disappear from the accounting.
//!
//! When the fault model is disabled the simulation holds no [`FaultLayer`]
//! at all — no streams are seeded, no coins flipped, no report emitted —
//! so a disabled-fault run is bitwise identical to one predating the
//! subsystem.

use crate::config::FaultConfig;
use bpp_broadcast::PageId;
use bpp_json::{field, opt_field, FromJson, Json, JsonError, ToJson};
use bpp_server::RequestQueue;
use bpp_sim::{Rng, Xoshiro256pp};

/// Channel-level loss counters accumulated by a [`FaultLayer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Page-carrying slots lost on the frontchannel.
    pub pages_lost: u64,
    /// Requests lost in transit on the backchannel.
    pub requests_lost: u64,
    /// Requests that arrived during a server brownout window and were
    /// discarded.
    pub requests_browned_out: u64,
}

/// The in-simulation fault machinery: the fault configuration plus its two
/// dedicated RNG streams and loss accounting.
#[derive(Debug, Clone)]
pub struct FaultLayer {
    cfg: FaultConfig,
    rng_loss: Xoshiro256pp,
    rng_req: Xoshiro256pp,
    counters: FaultCounters,
}

impl FaultLayer {
    /// Assemble the layer from its config and pre-seeded streams (the
    /// `World` builder owns stream assignment).
    pub fn new(cfg: FaultConfig, rng_loss: Xoshiro256pp, rng_req: Xoshiro256pp) -> Self {
        FaultLayer {
            cfg,
            rng_loss,
            rng_req,
            counters: FaultCounters::default(),
        }
    }

    /// Flip the frontchannel coin for one page-carrying slot. A lost slot
    /// still consumes broadcast bandwidth; no listener hears the page.
    /// Draws nothing when `broadcast_loss` is zero.
    pub fn page_lost(&mut self) -> bool {
        if self.cfg.broadcast_loss <= 0.0 {
            return false;
        }
        let lost = self.rng_loss.random_bool(self.cfg.broadcast_loss);
        if lost {
            self.counters.pages_lost += 1;
        }
        lost
    }

    /// Flip the transit coin for one backchannel send. The coin is flipped
    /// on *every* send — including sends into a brownout or at a crashed
    /// server — so the `FAULT_REQ` stream position depends only on the
    /// number of sends, not on server-side state.
    pub fn transit_lost(&mut self) -> bool {
        let lost = self.cfg.request_loss > 0.0 && self.rng_req.random_bool(self.cfg.request_loss);
        if lost {
            self.counters.requests_lost += 1;
        }
        lost
    }

    /// Whether a brownout window covers `now` — the pure query behind
    /// [`FaultLayer::brownout_discard`], counting nothing. The K-channel
    /// world samples it per channel (with each channel's phase shift) for
    /// the `fault.ch<k>.state` observability timelines.
    pub fn in_brownout(&self, now: f64) -> bool {
        self.cfg.in_brownout(now)
    }

    /// Clock check against the brownout window (no randomness); counts and
    /// returns `true` when the server discards the request.
    pub fn brownout_discard(&mut self, now: f64) -> bool {
        let browned = self.cfg.in_brownout(now);
        if browned {
            self.counters.requests_browned_out += 1;
        }
        browned
    }

    /// Carry one request over the backchannel toward `queue`: it may be
    /// lost in transit (`request_loss` coin), discarded by a browned-out
    /// server, or admitted through the ordinary (bounded, coalescing)
    /// queue path. Returns whether the request reached the queue.
    ///
    /// This is the no-crash composition of [`FaultLayer::transit_lost`]
    /// and [`FaultLayer::brownout_discard`]; the `World` splices its
    /// server-down and admission checks between the two.
    pub fn deliver(&mut self, queue: &mut RequestQueue, now: f64, page: PageId) -> bool {
        if self.transit_lost() {
            return false;
        }
        if self.brownout_discard(now) {
            return false;
        }
        queue.submit_at(page, now);
        true
    }

    /// Re-point the channel loss rates mid-run (chaos-phase transitions).
    /// Stream positions are unaffected: the loss coins keep drawing from
    /// wherever they were.
    pub fn set_channel_loss(&mut self, broadcast_loss: f64, request_loss: f64) {
        self.cfg.broadcast_loss = broadcast_loss;
        self.cfg.request_loss = request_loss;
    }

    /// Re-point the brownout window mid-run (chaos-phase transitions).
    /// Brownouts are a clock check, so this perturbs no RNG stream either.
    pub fn set_brownout(&mut self, period: f64, duration: f64) {
        self.cfg.brownout_period = period;
        self.cfg.brownout_duration = duration;
    }

    /// The loss counters so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }
}

/// Everything the crash–recovery domain did to one run, embedded in the
/// [`FaultReport`] (and its JSON) only when crashes are configured.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CrashReport {
    /// Server crashes that occurred during the run.
    pub crashes: u64,
    /// Requests that reached the server but were never served because of a
    /// crash: pending queue entries drained at crash time (riders counted
    /// at request grain) plus requests refused while the server was down.
    pub orphaned: u64,
    /// Broadcast slots that elapsed while the server was down (silent
    /// channel).
    pub down_slots: u64,
    /// Largest request-grain queue depth observed between a restart and
    /// the corresponding recovery — the thundering-herd signature.
    pub herd_peak_depth: u64,
    /// Crashes whose recovery completed within the run (the response EWMA
    /// returned to within `recovery_epsilon` of its pre-crash level).
    pub recoveries: u64,
    /// Mean time-to-recover over completed recoveries (broadcast units;
    /// `0` when none completed).
    pub mean_time_to_recover: f64,
    /// Worst time-to-recover over completed recoveries.
    pub max_time_to_recover: f64,
    /// When the first crash struck, if any did (pins the exponential
    /// schedule in determinism tests).
    pub first_crash_at: Option<f64>,
    /// Requests admitted by the token bucket (when admission is enabled).
    pub admitted: u64,
    /// Requests bounced by the token bucket with a retry-after hint.
    pub admission_rejected: u64,
}

impl ToJson for CrashReport {
    fn to_json(&self) -> Json {
        let mut obj = Json::object([
            ("crashes", self.crashes.to_json()),
            ("orphaned", self.orphaned.to_json()),
            ("down_slots", self.down_slots.to_json()),
            ("herd_peak_depth", self.herd_peak_depth.to_json()),
            ("recoveries", self.recoveries.to_json()),
            ("mean_time_to_recover", self.mean_time_to_recover.to_json()),
            ("max_time_to_recover", self.max_time_to_recover.to_json()),
            ("admitted", self.admitted.to_json()),
            ("admission_rejected", self.admission_rejected.to_json()),
        ]);
        if let (Json::Obj(members), Some(t)) = (&mut obj, self.first_crash_at) {
            members.push(("first_crash_at".to_string(), t.to_json()));
        }
        obj
    }
}

impl FromJson for CrashReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CrashReport {
            crashes: field(v, "crashes")?,
            orphaned: field(v, "orphaned")?,
            down_slots: field(v, "down_slots")?,
            herd_peak_depth: field(v, "herd_peak_depth")?,
            recoveries: field(v, "recoveries")?,
            mean_time_to_recover: field(v, "mean_time_to_recover")?,
            max_time_to_recover: field(v, "max_time_to_recover")?,
            admitted: field(v, "admitted")?,
            admission_rejected: field(v, "admission_rejected")?,
            first_crash_at: opt_field(v, "first_crash_at")?,
        })
    }
}

/// Everything the fault model did to one run, serialized alongside the
/// steady-state result (only when the fault model is enabled).
///
/// The channel-loss counters are carried verbatim from the
/// [`FaultLayer`]'s [`FaultCounters`] — one conversion point, no
/// field-by-field copying — but the JSON stays flat (the same ten keys as
/// before the embed) so pinned goldens and downstream parsers are
/// untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultReport {
    /// Channel-level losses straight from the fault layer.
    pub channel: FaultCounters,
    /// Requests discarded at a full queue (whole run).
    pub dropped_full: u64,
    /// Queue entries evicted under the `DropOldest` overflow policy.
    pub dropped_evicted: u64,
    /// Measured-Client request resends after timeouts.
    pub retries: u64,
    /// Times the retry budget ran out and the client fell back to waiting
    /// for the broadcast.
    pub retries_exhausted: u64,
    /// Saturation transitions that shed pull bandwidth.
    pub degradations: u64,
    /// Saturation recoveries that restored it.
    pub recoveries: u64,
    /// Slots spent in the degraded (saturated) state.
    pub saturated_slots: u64,
    /// The crash–recovery section, present only when crashes are
    /// configured (its JSON key is omitted otherwise).
    pub crash: Option<CrashReport>,
}

impl FaultReport {
    /// Total requests the fault model prevented from being served
    /// (in-transit losses, brownout discards, and queue drops/evictions).
    pub fn requests_denied(&self) -> u64 {
        self.channel.requests_lost
            + self.channel.requests_browned_out
            + self.dropped_full
            + self.dropped_evicted
    }
}

impl ToJson for FaultReport {
    fn to_json(&self) -> Json {
        let mut obj = Json::object([
            ("pages_lost", self.channel.pages_lost.to_json()),
            ("requests_lost", self.channel.requests_lost.to_json()),
            (
                "requests_browned_out",
                self.channel.requests_browned_out.to_json(),
            ),
            ("dropped_full", self.dropped_full.to_json()),
            ("dropped_evicted", self.dropped_evicted.to_json()),
            ("retries", self.retries.to_json()),
            ("retries_exhausted", self.retries_exhausted.to_json()),
            ("degradations", self.degradations.to_json()),
            ("recoveries", self.recoveries.to_json()),
            ("saturated_slots", self.saturated_slots.to_json()),
        ]);
        if let (Json::Obj(members), Some(crash)) = (&mut obj, &self.crash) {
            members.push(("crash".to_string(), crash.to_json()));
        }
        obj
    }
}

impl FromJson for FaultReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FaultReport {
            channel: FaultCounters {
                pages_lost: field(v, "pages_lost")?,
                requests_lost: field(v, "requests_lost")?,
                requests_browned_out: field(v, "requests_browned_out")?,
            },
            dropped_full: field(v, "dropped_full")?,
            dropped_evicted: field(v, "dropped_evicted")?,
            retries: field(v, "retries")?,
            retries_exhausted: field(v, "retries_exhausted")?,
            degradations: field(v, "degradations")?,
            recoveries: field(v, "recoveries")?,
            saturated_slots: field(v, "saturated_slots")?,
            crash: opt_field(v, "crash")?,
        })
    }
}

/// The auditor's account of every backchannel request in one faulted run.
///
/// Conservation says a sent request ends in exactly one bucket:
///
/// ```text
/// sent == lost_in_transit + browned_out + orphaned + admission_rejected
///       + dropped_full + evicted + served + in_flight_at_end
/// ```
///
/// [`ConservationLedger::violations`] also checks the queue bound
/// (request-grain depth never exceeded what the capacity allows) and
/// monotone simulation time. Chaos runs call
/// [`ConservationLedger::assert_clean`] after every phase schedule —
/// a violation is a simulator bug, never survivable data.
///
/// Serialized (one way) into the chaos harness output; never parsed back.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConservationLedger {
    /// Requests sent by clients (Measured Client and fleet alike).
    pub sent: u64,
    /// Lost to the `request_loss` transit coin.
    pub lost_in_transit: u64,
    /// Discarded inside brownout windows.
    pub browned_out: u64,
    /// Lost to a crash: drained from the queue or refused while down.
    pub orphaned: u64,
    /// Bounced by the admission token bucket.
    pub admission_rejected: u64,
    /// Dropped at a full queue (request grain: riders included).
    pub dropped_full: u64,
    /// Evicted under `DropOldest` (request grain: riders included).
    pub evicted: u64,
    /// Served by a pull slot (request grain: riders included).
    pub served: u64,
    /// Still pending in the queue when the run ended (request grain).
    pub in_flight_at_end: u64,
    /// Largest entry-grain queue depth ever observed.
    pub peak_queue_depth: u64,
    /// The configured queue capacity the peak is checked against.
    pub queue_capacity: u64,
    /// Times the event clock ran backwards (must be zero).
    pub time_regressions: u64,
}

impl ConservationLedger {
    /// The sum of all terminal buckets (the right-hand side of the
    /// conservation equation).
    pub fn accounted(&self) -> u64 {
        self.lost_in_transit
            + self.browned_out
            + self.orphaned
            + self.admission_rejected
            + self.dropped_full
            + self.evicted
            + self.served
            + self.in_flight_at_end
    }

    /// Every invariant this ledger violates, as human-readable findings.
    /// Empty means the run conserved requests, respected the queue bound,
    /// and never moved time backwards.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let accounted = self.accounted();
        if self.sent != accounted {
            v.push(format!(
                "request conservation violated: sent {} != accounted {} \
                 (lost {} + browned {} + orphaned {} + rejected {} + dropped {} \
                 + evicted {} + served {} + in-flight {})",
                self.sent,
                accounted,
                self.lost_in_transit,
                self.browned_out,
                self.orphaned,
                self.admission_rejected,
                self.dropped_full,
                self.evicted,
                self.served,
                self.in_flight_at_end,
            ));
        }
        if self.peak_queue_depth > self.queue_capacity {
            v.push(format!(
                "queue bound violated: peak depth {} exceeds capacity {}",
                self.peak_queue_depth, self.queue_capacity
            ));
        }
        if self.time_regressions > 0 {
            v.push(format!(
                "monotone time violated: the clock ran backwards {} time(s)",
                self.time_regressions
            ));
        }
        v
    }

    /// Hard-fail on any violation: the chaos harness treats a dirty ledger
    /// as a simulator bug, not a reportable result.
    ///
    /// # Panics
    ///
    /// Panics with every violation listed when the ledger is dirty.
    pub fn assert_clean(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "conservation audit failed:\n  {}",
            violations.join("\n  ")
        );
    }
}

impl ToJson for ConservationLedger {
    fn to_json(&self) -> Json {
        Json::object([
            ("sent", self.sent.to_json()),
            ("lost_in_transit", self.lost_in_transit.to_json()),
            ("browned_out", self.browned_out.to_json()),
            ("orphaned", self.orphaned.to_json()),
            ("admission_rejected", self.admission_rejected.to_json()),
            ("dropped_full", self.dropped_full.to_json()),
            ("evicted", self.evicted.to_json()),
            ("served", self.served.to_json()),
            ("in_flight_at_end", self.in_flight_at_end.to_json()),
            ("peak_queue_depth", self.peak_queue_depth.to_json()),
            ("queue_capacity", self.queue_capacity.to_json()),
            ("time_regressions", self.time_regressions.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::stream_rng;

    fn layer(cfg: FaultConfig) -> FaultLayer {
        use crate::simulation::streams;
        FaultLayer::new(
            cfg,
            stream_rng(1, streams::FAULT_LOSS),
            stream_rng(1, streams::FAULT_REQ),
        )
    }

    #[test]
    fn zero_loss_flips_no_coins_and_loses_nothing() {
        let mut f = layer(FaultConfig::none());
        for _ in 0..100 {
            assert!(!f.page_lost());
        }
        let mut q = RequestQueue::new(10);
        assert!(f.deliver(&mut q, 0.0, PageId(1)));
        assert_eq!(q.len(), 1);
        assert_eq!(*f.counters(), FaultCounters::default());
    }

    #[test]
    fn certain_loss_loses_everything() {
        let mut f = layer(FaultConfig {
            broadcast_loss: 1.0,
            request_loss: 1.0,
            ..FaultConfig::none()
        });
        let mut q = RequestQueue::new(10);
        for _ in 0..50 {
            assert!(f.page_lost());
            assert!(!f.deliver(&mut q, 0.0, PageId(1)));
        }
        assert!(q.is_empty());
        assert_eq!(f.counters().pages_lost, 50);
        assert_eq!(f.counters().requests_lost, 50);
    }

    #[test]
    fn partial_loss_rate_is_roughly_honored_and_deterministic() {
        let run = || {
            let mut f = layer(FaultConfig {
                broadcast_loss: 0.3,
                ..FaultConfig::none()
            });
            (0..10_000).filter(|_| f.page_lost()).count()
        };
        let lost = run();
        let frac = lost as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "observed loss {frac}");
        assert_eq!(lost, run(), "same seed, same losses");
    }

    #[test]
    fn brownout_discards_without_randomness() {
        let mut f = layer(FaultConfig {
            brownout_period: 100.0,
            brownout_duration: 10.0,
            ..FaultConfig::none()
        });
        let mut q = RequestQueue::new(10);
        assert!(!f.deliver(&mut q, 5.0, PageId(1)), "inside the window");
        assert!(f.deliver(&mut q, 50.0, PageId(2)), "outside the window");
        assert!(!f.deliver(&mut q, 105.0, PageId(3)), "next cycle's window");
        assert_eq!(f.counters().requests_browned_out, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = FaultReport {
            channel: FaultCounters {
                pages_lost: 1,
                requests_lost: 2,
                requests_browned_out: 3,
            },
            dropped_full: 4,
            dropped_evicted: 5,
            retries: 6,
            retries_exhausted: 7,
            degradations: 8,
            recoveries: 9,
            saturated_slots: 10,
            crash: None,
        };
        let text = bpp_json::to_string(&r);
        // Channel counters stay flat in the JSON (backward-compatible keys).
        assert!(text.contains("\"pages_lost\""));
        assert!(!text.contains("\"channel\""));
        assert!(!text.contains("\"crash\""), "crash key absent when None");
        let back: FaultReport = bpp_json::from_str(&text).unwrap();
        assert_eq!(r, back);
        assert_eq!(r.requests_denied(), 2 + 3 + 4 + 5);
    }

    #[test]
    fn crash_section_round_trips_when_present() {
        let r = FaultReport {
            crash: Some(CrashReport {
                crashes: 2,
                orphaned: 11,
                down_slots: 128,
                herd_peak_depth: 40,
                recoveries: 2,
                mean_time_to_recover: 75.5,
                max_time_to_recover: 90.0,
                first_crash_at: Some(512.0),
                admitted: 100,
                admission_rejected: 17,
            }),
            ..FaultReport::default()
        };
        let text = bpp_json::to_string(&r);
        assert!(text.contains("\"crash\""));
        let back: FaultReport = bpp_json::from_str(&text).unwrap();
        assert_eq!(r, back);
        // A crash report with no crash yet omits `first_crash_at` entirely.
        let quiet = FaultReport {
            crash: Some(CrashReport::default()),
            ..FaultReport::default()
        };
        let text = bpp_json::to_string(&quiet);
        assert!(!text.contains("first_crash_at"));
        let back: FaultReport = bpp_json::from_str(&text).unwrap();
        assert_eq!(quiet, back);
    }

    #[test]
    fn ledger_balance_is_clean_only_when_every_request_is_accounted() {
        let ledger = ConservationLedger {
            sent: 100,
            lost_in_transit: 10,
            browned_out: 5,
            orphaned: 7,
            admission_rejected: 8,
            dropped_full: 20,
            evicted: 4,
            served: 40,
            in_flight_at_end: 6,
            peak_queue_depth: 9,
            queue_capacity: 10,
            time_regressions: 0,
        };
        assert_eq!(ledger.accounted(), 100);
        assert!(ledger.violations().is_empty());
        ledger.assert_clean();
        // Dropping a single orphan from the books trips conservation.
        let mut cooked = ledger;
        cooked.orphaned -= 1;
        let v = cooked.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("conservation"));
    }

    #[test]
    fn ledger_flags_queue_bound_and_time_regressions() {
        let ledger = ConservationLedger {
            sent: 1,
            served: 1,
            peak_queue_depth: 11,
            queue_capacity: 10,
            time_regressions: 2,
            ..ConservationLedger::default()
        };
        let v = ledger.violations();
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("queue bound"));
        assert!(v[1].contains("monotone time"));
    }

    #[test]
    #[should_panic(expected = "conservation audit failed")]
    fn dirty_ledger_hard_fails() {
        ConservationLedger {
            sent: 3,
            ..ConservationLedger::default()
        }
        .assert_clean();
    }
}
