//! Runtime fault injection: the lossy channels and brownout windows of
//! [`FaultConfig`](crate::config::FaultConfig), plus the per-run
//! [`FaultReport`] that makes degradation observable in experiment output.
//!
//! The injection points are deliberately few and all deterministic:
//!
//! * **frontchannel** — one coin per page-carrying slot on the
//!   `FAULT_LOSS` RNG stream decides whether every listener misses the
//!   page ([`FaultLayer::page_lost`]);
//! * **backchannel** — one coin per sent request on the `FAULT_REQ` stream
//!   ([`FaultLayer::deliver`]), then a clock check against the brownout
//!   window (no randomness), then the ordinary queue admission path;
//! * **client retries** and **server degradation** live in `bpp-client` /
//!   `bpp-server`; their counters are folded into the same report.
//!
//! When the fault model is disabled the simulation holds no [`FaultLayer`]
//! at all — no streams are seeded, no coins flipped, no report emitted —
//! so a disabled-fault run is bitwise identical to one predating the
//! subsystem.

use crate::config::FaultConfig;
use bpp_broadcast::PageId;
use bpp_json::{field, FromJson, Json, JsonError, ToJson};
use bpp_server::RequestQueue;
use bpp_sim::{Rng, Xoshiro256pp};

/// Channel-level loss counters accumulated by a [`FaultLayer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Page-carrying slots lost on the frontchannel.
    pub pages_lost: u64,
    /// Requests lost in transit on the backchannel.
    pub requests_lost: u64,
    /// Requests that arrived during a server brownout window and were
    /// discarded.
    pub requests_browned_out: u64,
}

/// The in-simulation fault machinery: the fault configuration plus its two
/// dedicated RNG streams and loss accounting.
#[derive(Debug, Clone)]
pub struct FaultLayer {
    cfg: FaultConfig,
    rng_loss: Xoshiro256pp,
    rng_req: Xoshiro256pp,
    counters: FaultCounters,
}

impl FaultLayer {
    /// Assemble the layer from its config and pre-seeded streams (the
    /// `World` builder owns stream assignment).
    pub fn new(cfg: FaultConfig, rng_loss: Xoshiro256pp, rng_req: Xoshiro256pp) -> Self {
        FaultLayer {
            cfg,
            rng_loss,
            rng_req,
            counters: FaultCounters::default(),
        }
    }

    /// Flip the frontchannel coin for one page-carrying slot. A lost slot
    /// still consumes broadcast bandwidth; no listener hears the page.
    /// Draws nothing when `broadcast_loss` is zero.
    pub fn page_lost(&mut self) -> bool {
        if self.cfg.broadcast_loss <= 0.0 {
            return false;
        }
        let lost = self.rng_loss.random_bool(self.cfg.broadcast_loss);
        if lost {
            self.counters.pages_lost += 1;
        }
        lost
    }

    /// Carry one request over the backchannel toward `queue`: it may be
    /// lost in transit (`request_loss` coin), discarded by a browned-out
    /// server, or admitted through the ordinary (bounded, coalescing)
    /// queue path. Returns whether the request reached the queue.
    ///
    /// The transit coin is flipped on every send — including sends into a
    /// brownout — so the `FAULT_REQ` stream position depends only on the
    /// number of sends, not on server-side state.
    pub fn deliver(&mut self, queue: &mut RequestQueue, now: f64, page: PageId) -> bool {
        let lost_in_transit =
            self.cfg.request_loss > 0.0 && self.rng_req.random_bool(self.cfg.request_loss);
        if lost_in_transit {
            self.counters.requests_lost += 1;
            return false;
        }
        if self.cfg.in_brownout(now) {
            self.counters.requests_browned_out += 1;
            return false;
        }
        queue.submit_at(page, now);
        true
    }

    /// The loss counters so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }
}

/// Everything the fault model did to one run, serialized alongside the
/// steady-state result (only when the fault model is enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Page-carrying slots lost on the frontchannel.
    pub pages_lost: u64,
    /// Requests lost in transit on the backchannel.
    pub requests_lost: u64,
    /// Requests discarded by the server during brownout windows.
    pub requests_browned_out: u64,
    /// Requests discarded at a full queue (whole run).
    pub dropped_full: u64,
    /// Queue entries evicted under the `DropOldest` overflow policy.
    pub dropped_evicted: u64,
    /// Measured-Client request resends after timeouts.
    pub retries: u64,
    /// Times the retry budget ran out and the client fell back to waiting
    /// for the broadcast.
    pub retries_exhausted: u64,
    /// Saturation transitions that shed pull bandwidth.
    pub degradations: u64,
    /// Saturation recoveries that restored it.
    pub recoveries: u64,
    /// Slots spent in the degraded (saturated) state.
    pub saturated_slots: u64,
}

impl FaultReport {
    /// Total requests the fault model prevented from being served
    /// (in-transit losses, brownout discards, and queue drops/evictions).
    pub fn requests_denied(&self) -> u64 {
        self.requests_lost + self.requests_browned_out + self.dropped_full + self.dropped_evicted
    }
}

impl ToJson for FaultReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("pages_lost", self.pages_lost.to_json()),
            ("requests_lost", self.requests_lost.to_json()),
            ("requests_browned_out", self.requests_browned_out.to_json()),
            ("dropped_full", self.dropped_full.to_json()),
            ("dropped_evicted", self.dropped_evicted.to_json()),
            ("retries", self.retries.to_json()),
            ("retries_exhausted", self.retries_exhausted.to_json()),
            ("degradations", self.degradations.to_json()),
            ("recoveries", self.recoveries.to_json()),
            ("saturated_slots", self.saturated_slots.to_json()),
        ])
    }
}

impl FromJson for FaultReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FaultReport {
            pages_lost: field(v, "pages_lost")?,
            requests_lost: field(v, "requests_lost")?,
            requests_browned_out: field(v, "requests_browned_out")?,
            dropped_full: field(v, "dropped_full")?,
            dropped_evicted: field(v, "dropped_evicted")?,
            retries: field(v, "retries")?,
            retries_exhausted: field(v, "retries_exhausted")?,
            degradations: field(v, "degradations")?,
            recoveries: field(v, "recoveries")?,
            saturated_slots: field(v, "saturated_slots")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::stream_rng;

    fn layer(cfg: FaultConfig) -> FaultLayer {
        use crate::simulation::streams;
        FaultLayer::new(
            cfg,
            stream_rng(1, streams::FAULT_LOSS),
            stream_rng(1, streams::FAULT_REQ),
        )
    }

    #[test]
    fn zero_loss_flips_no_coins_and_loses_nothing() {
        let mut f = layer(FaultConfig::none());
        for _ in 0..100 {
            assert!(!f.page_lost());
        }
        let mut q = RequestQueue::new(10);
        assert!(f.deliver(&mut q, 0.0, PageId(1)));
        assert_eq!(q.len(), 1);
        assert_eq!(*f.counters(), FaultCounters::default());
    }

    #[test]
    fn certain_loss_loses_everything() {
        let mut f = layer(FaultConfig {
            broadcast_loss: 1.0,
            request_loss: 1.0,
            ..FaultConfig::none()
        });
        let mut q = RequestQueue::new(10);
        for _ in 0..50 {
            assert!(f.page_lost());
            assert!(!f.deliver(&mut q, 0.0, PageId(1)));
        }
        assert!(q.is_empty());
        assert_eq!(f.counters().pages_lost, 50);
        assert_eq!(f.counters().requests_lost, 50);
    }

    #[test]
    fn partial_loss_rate_is_roughly_honored_and_deterministic() {
        let run = || {
            let mut f = layer(FaultConfig {
                broadcast_loss: 0.3,
                ..FaultConfig::none()
            });
            (0..10_000).filter(|_| f.page_lost()).count()
        };
        let lost = run();
        let frac = lost as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "observed loss {frac}");
        assert_eq!(lost, run(), "same seed, same losses");
    }

    #[test]
    fn brownout_discards_without_randomness() {
        let mut f = layer(FaultConfig {
            brownout_period: 100.0,
            brownout_duration: 10.0,
            ..FaultConfig::none()
        });
        let mut q = RequestQueue::new(10);
        assert!(!f.deliver(&mut q, 5.0, PageId(1)), "inside the window");
        assert!(f.deliver(&mut q, 50.0, PageId(2)), "outside the window");
        assert!(!f.deliver(&mut q, 105.0, PageId(3)), "next cycle's window");
        assert_eq!(f.counters().requests_browned_out, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = FaultReport {
            pages_lost: 1,
            requests_lost: 2,
            requests_browned_out: 3,
            dropped_full: 4,
            dropped_evicted: 5,
            retries: 6,
            retries_exhausted: 7,
            degradations: 8,
            recoveries: 9,
            saturated_slots: 10,
        };
        let text = bpp_json::to_string(&r);
        let back: FaultReport = bpp_json::from_str(&text).unwrap();
        assert_eq!(r, back);
        assert_eq!(r.requests_denied(), 2 + 3 + 4 + 5);
    }
}
