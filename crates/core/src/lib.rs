//! # bpp-core — Balancing Push and Pull for Data Broadcast
//!
//! A from-scratch reproduction of the system studied in:
//!
//! > S. Acharya, M. Franklin, S. Zdonik. *Balancing Push and Pull for Data
//! > Broadcast.* Proc. ACM SIGMOD, Tucson, AZ, May 1997.
//!
//! The paper integrates a pull backchannel into the push-only *Broadcast
//! Disks* dissemination model and studies the trade-off between the two
//! under varying server load. This crate assembles the substrates
//! (`bpp-sim`, `bpp-workload`, `bpp-broadcast`, `bpp-cache`, `bpp-server`,
//! `bpp-client`) into the three data-delivery algorithms the paper compares:
//!
//! * **Pure-Push** — all bandwidth to the periodic Broadcast Disk; clients
//!   wait for pages to come around;
//! * **Pure-Pull** — all bandwidth to request/response with snooping; every
//!   miss is an explicit backchannel request;
//! * **IPP** (Interleaved Push and Pull) — a `PullBW`-weighted mix, with a
//!   client-side threshold to conserve the backchannel and an optionally
//!   truncated ("chopped") push schedule.
//!
//! ## Quick start
//!
//! ```
//! use bpp_core::{Algorithm, SystemConfig, MeasurementProtocol, run_steady_state};
//!
//! let mut cfg = SystemConfig::paper_default();
//! cfg.algorithm = Algorithm::Ipp;
//! cfg.pull_bw = 0.5;
//! cfg.think_time_ratio = 25.0;
//! // Keep the doctest fast: a loose convergence target.
//! let proto = MeasurementProtocol::quick();
//! let result = run_steady_state(&cfg, &proto);
//! assert!(result.mean_response > 0.0);
//! ```
//!
//! The [`experiments`] module regenerates every figure in the paper's
//! evaluation (see DESIGN.md for the experiment index), and [`analytic`]
//! provides closed-form cross-checks.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod analytic;
pub mod chaos;
pub mod config;
pub mod experiments;
pub mod fault;
pub(crate) mod obs;
pub mod report;
pub mod runner;
pub mod simulation;

pub use chaos::{run_chaos, ChaosResult, FaultPhase, FaultSchedule};
pub use config::{
    Algorithm, CachePolicy, ClientPopulation, ConfigError, ConfigErrors, CrashConfig, FaultConfig,
    MeasurementProtocol, QueueDiscipline, SystemConfig,
};
pub use fault::{ConservationLedger, CrashReport, FaultCounters, FaultLayer, FaultReport};
// The observability knob block and report type are part of the public
// config/result surface; re-export them alongside SystemConfig.
pub use bpp_obs::{ObsConfig, ObsReport};
// The fault-model policy knobs live with their mechanisms; re-export them so
// a `FaultConfig` can be assembled from this crate alone.
pub use bpp_client::{RetryPolicy, RetryState};
pub use bpp_server::{AdmissionConfig, OverflowPolicy, SaturationPolicy};
pub use runner::{
    run_steady_state, run_warmup, FleetResult, RunError, SteadyStateResult, WarmupResult,
};
pub use simulation::{streams, SlotAccounting, World};
