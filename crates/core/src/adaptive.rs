//! Adaptive IPP — the paper's "future work" dynamic algorithm (§6).
//!
//! > "As the contention on the server increases, a dynamic algorithm might
//! > automatically reduce the pull bandwidth at the server and also use a
//! > larger threshold at the client."
//!
//! The [`AdaptiveController`] watches the server queue's drop rate over a
//! sliding window of slots. Sustained drops mean the system is past
//! saturation: pull slots are being spent on a queue most requests never
//! reach, so the controller *shrinks* `PullBW` (speeding up the push
//! "safety net") and *raises* the client threshold (conserving the
//! backchannel for the farthest pages). When the window is drop-free it
//! moves both knobs back toward their aggressive settings.

use crate::config::{MeasurementProtocol, SystemConfig};
use crate::runner::SteadyStateResult;
use crate::simulation::World;
use bpp_json::{field, FromJson, Json, JsonError, ToJson};
use bpp_server::QueueStats;
use bpp_sim::Confidence;

/// Tuning of the adaptive controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Slots between adjustment decisions.
    pub interval: u64,
    /// Lower bound for `PullBW`.
    pub min_pull_bw: f64,
    /// Upper bound for `PullBW`.
    pub max_pull_bw: f64,
    /// `PullBW` change per adjustment.
    pub bw_step: f64,
    /// Lower bound for the client threshold (fraction of major cycle).
    pub min_thres: f64,
    /// Upper bound for the client threshold.
    pub max_thres: f64,
    /// Threshold change per adjustment.
    pub thres_step: f64,
    /// Window drop rate above which the system is considered saturated.
    pub high_drop: f64,
    /// Window drop rate below which the system is considered underloaded.
    pub low_drop: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            interval: 2_000,
            min_pull_bw: 0.1,
            max_pull_bw: 0.9,
            bw_step: 0.1,
            min_thres: 0.0,
            max_thres: 0.5,
            thres_step: 0.1,
            high_drop: 0.10,
            low_drop: 0.01,
        }
    }
}

impl ToJson for AdaptiveConfig {
    fn to_json(&self) -> Json {
        Json::object([
            ("interval", self.interval.to_json()),
            ("min_pull_bw", self.min_pull_bw.to_json()),
            ("max_pull_bw", self.max_pull_bw.to_json()),
            ("bw_step", self.bw_step.to_json()),
            ("min_thres", self.min_thres.to_json()),
            ("max_thres", self.max_thres.to_json()),
            ("thres_step", self.thres_step.to_json()),
            ("high_drop", self.high_drop.to_json()),
            ("low_drop", self.low_drop.to_json()),
        ])
    }
}

impl FromJson for AdaptiveConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(AdaptiveConfig {
            interval: field(v, "interval")?,
            min_pull_bw: field(v, "min_pull_bw")?,
            max_pull_bw: field(v, "max_pull_bw")?,
            bw_step: field(v, "bw_step")?,
            min_thres: field(v, "min_thres")?,
            max_thres: field(v, "max_thres")?,
            thres_step: field(v, "thres_step")?,
            high_drop: field(v, "high_drop")?,
            low_drop: field(v, "low_drop")?,
        })
    }
}

/// Watches queue statistics and proposes (PullBW, ThresPerc) updates.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    cfg: AdaptiveConfig,
    slots_since_adjust: u64,
    window_start: QueueStats,
    pull_bw: f64,
    thres: f64,
    initial_pull_bw: f64,
    initial_thres: f64,
    // bpp-lint: allow(D13): run-history count — deliberately survives a crash
    adjustments: u64,
}

impl AdaptiveController {
    /// Start from the current knob settings.
    pub fn new(cfg: AdaptiveConfig, initial_pull_bw: f64, initial_thres: f64) -> Self {
        assert!(cfg.min_pull_bw <= cfg.max_pull_bw && cfg.min_thres <= cfg.max_thres);
        assert!(cfg.low_drop <= cfg.high_drop);
        let pull_bw = initial_pull_bw.clamp(cfg.min_pull_bw, cfg.max_pull_bw);
        let thres = initial_thres.clamp(cfg.min_thres, cfg.max_thres);
        AdaptiveController {
            cfg,
            slots_since_adjust: 0,
            window_start: QueueStats::default(),
            pull_bw,
            thres,
            initial_pull_bw: pull_bw,
            initial_thres: thres,
            adjustments: 0,
        }
    }

    /// Server crash: the learned knob settings and the open observation
    /// window are volatile state. A cold restart goes back to the initial
    /// knobs and starts a fresh window anchored at the queue's *current*
    /// cumulative counters (pre-crash traffic must not bias the first
    /// post-restart decision). Returns the restored `(pull_bw, thres_perc)`
    /// for the caller to re-apply. The adjustment count survives — it is
    /// run history, not server memory.
    pub fn crash_reset(&mut self, cumulative: &QueueStats) -> (f64, f64) {
        self.slots_since_adjust = 0;
        self.window_start = *cumulative;
        self.pull_bw = self.initial_pull_bw;
        self.thres = self.initial_thres;
        (self.pull_bw, self.thres)
    }

    /// Current `PullBW` setting.
    pub fn pull_bw(&self) -> f64 {
        self.pull_bw
    }

    /// Current threshold setting.
    pub fn thres_perc(&self) -> f64 {
        self.thres
    }

    /// Number of adjustments made.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Called once per slot with the queue's cumulative statistics. At the
    /// end of each window, returns new `(pull_bw, thres_perc)` settings if
    /// they changed.
    pub fn on_slot(&mut self, cumulative: &QueueStats) -> Option<(f64, f64)> {
        self.slots_since_adjust += 1;
        if self.slots_since_adjust < self.cfg.interval {
            return None;
        }
        self.slots_since_adjust = 0;
        let received = cumulative.received - self.window_start.received;
        let dropped = cumulative.dropped_full - self.window_start.dropped_full;
        self.window_start = *cumulative;
        if received == 0 {
            return None;
        }
        let drop_rate = dropped as f64 / received as f64;
        let (old_bw, old_thres) = (self.pull_bw, self.thres);
        if drop_rate > self.cfg.high_drop {
            // Saturated: hand bandwidth back to the push safety net and
            // make clients conserve the backchannel.
            self.pull_bw = (self.pull_bw - self.cfg.bw_step).max(self.cfg.min_pull_bw);
            self.thres = (self.thres + self.cfg.thres_step).min(self.cfg.max_thres);
        } else if drop_rate < self.cfg.low_drop {
            // Underloaded: spend bandwidth on responsive on-demand service.
            self.pull_bw = (self.pull_bw + self.cfg.bw_step).min(self.cfg.max_pull_bw);
            self.thres = (self.thres - self.cfg.thres_step).max(self.cfg.min_thres);
        }
        if (self.pull_bw, self.thres) != (old_bw, old_thres) {
            self.adjustments += 1;
            Some((self.pull_bw, self.thres))
        } else {
            None
        }
    }
}

/// Steady-state result of an adaptive run plus the final knob settings.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The usual steady-state metrics.
    pub steady: SteadyStateResult,
    /// Final `PullBW` the controller settled on.
    pub final_pull_bw: f64,
    /// Final threshold the controller settled on.
    pub final_thres_perc: f64,
    /// Adjustments made over the run.
    pub adjustments: u64,
}

impl ToJson for AdaptiveResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("steady", self.steady.to_json()),
            ("final_pull_bw", self.final_pull_bw.to_json()),
            ("final_thres_perc", self.final_thres_perc.to_json()),
            ("adjustments", self.adjustments.to_json()),
        ])
    }
}

/// Run the steady-state protocol with the adaptive controller enabled.
pub fn run_adaptive(
    cfg: &SystemConfig,
    proto: &MeasurementProtocol,
    actrl: AdaptiveConfig,
) -> AdaptiveResult {
    let mut world = World::steady_state(cfg, proto);
    world.enable_adaptive(AdaptiveController::new(
        actrl,
        cfg.effective_pull_bw(),
        cfg.thres_perc,
    ));
    let mut engine = world.into_engine();
    engine.run_while(|w| !w.done());
    let w = engine.model();
    let bm = w.responses();
    // bpp-lint: allow(D3): callers reach this only on worlds built with an adaptive controller
    let ctrl = w.adaptive().expect("adaptive enabled");
    let converged = bm.converged(Confidence::P95, proto.rel_precision, proto.min_batches);
    AdaptiveResult {
        final_pull_bw: ctrl.pull_bw(),
        final_thres_perc: ctrl.thres_perc(),
        adjustments: ctrl.adjustments(),
        steady: crate::runner::collect_steady_state(w, engine.obs(), engine.now(), converged),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;

    fn stats(received: u64, dropped: u64) -> QueueStats {
        QueueStats {
            received,
            dropped_full: dropped,
            ..Default::default()
        }
    }

    #[test]
    fn controller_backs_off_under_drops() {
        let cfg = AdaptiveConfig {
            interval: 10,
            ..Default::default()
        };
        let mut c = AdaptiveController::new(cfg, 0.5, 0.0);
        let mut update = None;
        for slot in 1..=10 {
            update = c.on_slot(&stats(slot * 10, slot * 5)); // 50% drops
        }
        let (bw, thres) = update.expect("window closed with an adjustment");
        assert!(bw < 0.5, "bw {bw}");
        assert!(thres > 0.0, "thres {thres}");
    }

    #[test]
    fn controller_opens_up_when_idle() {
        let cfg = AdaptiveConfig {
            interval: 5,
            ..Default::default()
        };
        let mut c = AdaptiveController::new(cfg, 0.3, 0.3);
        let mut update = None;
        for slot in 1..=5 {
            update = c.on_slot(&stats(slot * 10, 0));
        }
        let (bw, thres) = update.expect("adjusted");
        assert!(bw > 0.3);
        assert!(thres < 0.3);
    }

    #[test]
    fn controller_respects_bounds() {
        let cfg = AdaptiveConfig {
            interval: 1,
            ..Default::default()
        };
        let mut c = AdaptiveController::new(cfg, 0.1, 0.5);
        // Saturated forever: knobs must stay clamped.
        for slot in 1..200u64 {
            c.on_slot(&stats(slot * 100, slot * 90));
            assert!(c.pull_bw() >= cfg.min_pull_bw - 1e-12);
            assert!(c.thres_perc() <= cfg.max_thres + 1e-12);
        }
        assert!((c.pull_bw() - cfg.min_pull_bw).abs() < 1e-9);
        assert!((c.thres_perc() - cfg.max_thres).abs() < 1e-9);
    }

    #[test]
    fn crash_reset_restores_initial_knobs_and_reanchors_the_window() {
        let cfg = AdaptiveConfig {
            interval: 1,
            ..Default::default()
        };
        let mut c = AdaptiveController::new(cfg, 0.5, 0.1);
        // Drive the knobs away from their initial settings.
        for slot in 1..=5u64 {
            c.on_slot(&stats(slot * 100, slot * 90));
        }
        assert!(c.pull_bw() < 0.5);
        let made = c.adjustments();
        let (bw, thres) = c.crash_reset(&stats(500, 450));
        assert_eq!((bw, thres), (0.5, 0.1), "cold restart forgets learning");
        assert_eq!(c.adjustments(), made, "run history survives");
        // The first post-restart window sees only post-restart traffic:
        // no drops since the anchor -> the controller opens up, not down.
        let (bw, _) = c.on_slot(&stats(600, 450)).expect("adjusted");
        assert!(bw > 0.5, "pre-crash drops must not bias the decision");
    }

    #[test]
    fn moderate_drop_rate_holds_steady() {
        let cfg = AdaptiveConfig {
            interval: 1,
            ..Default::default()
        };
        let mut c = AdaptiveController::new(cfg, 0.5, 0.2);
        // 5% drops: between low (1%) and high (10%) watermarks.
        for slot in 1..50u64 {
            assert_eq!(c.on_slot(&stats(slot * 100, slot * 5)), None);
        }
        assert_eq!(c.adjustments(), 0);
    }

    #[test]
    fn empty_window_makes_no_decision() {
        let cfg = AdaptiveConfig {
            interval: 2,
            ..Default::default()
        };
        let mut c = AdaptiveController::new(cfg, 0.5, 0.0);
        assert_eq!(c.on_slot(&stats(0, 0)), None);
        assert_eq!(c.on_slot(&stats(0, 0)), None);
        assert_eq!(c.adjustments(), 0);
    }

    #[test]
    fn adaptive_run_completes_and_reports_knobs() {
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::Ipp;
        cfg.think_time_ratio = 100.0;
        let actrl = AdaptiveConfig {
            interval: 200,
            ..Default::default()
        };
        let r = run_adaptive(&cfg, &MeasurementProtocol::quick(), actrl);
        assert!(r.steady.mean_response > 0.0);
        assert!(r.final_pull_bw >= actrl.min_pull_bw && r.final_pull_bw <= actrl.max_pull_bw);
    }
}
