//! The integrated simulation world: server, broadcast channel, Measured
//! Client and Virtual Client, driven by the `bpp-sim` event engine.
//!
//! ## Event structure
//!
//! * `Slot` — fires at every integer time `t`. The server decides (PullBW
//!   coin vs. queue state) whether the slot `[t, t+1)` carries the pull
//!   queue head or the next page of the periodic program; the page becomes
//!   available to clients at `t + 1`. After the decision, the handler
//!   drains every Virtual-Client access that arrives during the slot —
//!   equivalent in distribution to individual arrival events (the schedule
//!   cursor only changes at slot boundaries) but an order of magnitude
//!   cheaper at the paper's heaviest loads (12.5 VC accesses per unit).
//! * `McWake` — the Measured Client finishes thinking and begins an access.
//!   Hits complete instantly; misses block the client until some slot
//!   carries the page (its own pull, another client's pull, or the push
//!   program's "safety net").
//!
//! ## Measurement phases
//!
//! `CacheWarmup → Skip → Measure` implements the paper's steady-state
//! protocol (measure only after the cache has been full for 4000 accesses,
//! stop when the batch-means CI stabilises). The alternative
//! `WarmupExperiment` phase runs the Figure-4 protocol instead: a cold
//! client, timing how fast the cache acquires its ideal content.

use crate::config::{
    Algorithm, CachePolicy, CrashConfig, MeasurementProtocol, QueueDiscipline, SystemConfig,
};
use crate::fault::{ConservationLedger, CrashReport, FaultLayer, FaultReport};
use crate::obs::ObsState;
use bpp_broadcast::{
    assignment::identity_ranking, hot_access_sets, Assignment, BroadcastProgram, DiskSpec,
    MultiChannelProgram, PageId, Slot,
};
use bpp_cache::{LfuCache, LruCache, ReplacementPolicy, StaticScoreCache};
use bpp_client::{
    best_channel, fallback_channel, BeginOutcome, ClientArena, MeasuredClient, RetryPolicy,
    RetryState, ThresholdFilter, VcAccess, VirtualClient, WakeOutcome, WarmupTracker,
};
use bpp_obs::{EngineObs, ObsReport};
use bpp_server::{
    Admission, BandwidthMux, Discipline, QueueStats, RequestQueue, SaturationDetector, SlotDecision,
};
use bpp_sim::{
    stream_rng, BatchMeans, Confidence, Engine, Ewma, Histogram, Model, Rng, Scheduler, Time,
    Welford, Xoshiro256pp,
};
use bpp_workload::{AccessPattern, NoisePermutation, ThinkTime, Zipf};

/// The RNG stream registry — the workspace's single source of truth.
///
/// Every stochastic component draws from `stream_rng(seed, streams::X)`;
/// ids are stable across versions because changing one component's draw
/// count must never perturb the variates any other component sees (the
/// common-random-numbers discipline behind all published figures).
///
/// | id | constant     | owner                              | drawn when            |
/// |----|--------------|------------------------------------|-----------------------|
/// | 0  | `MUX`        | `bpp_server::BandwidthMux`         | every slot boundary   |
/// | 1  | `MC`         | Measured Client think/access       | every MC access       |
/// | 2  | `VC`         | Virtual Client population          | every VC access       |
/// | 3  | `NOISE`      | `bpp_workload::NoisePermutation`   | once at build         |
/// | 4  | `UPDATE`     | server-side update process         | per update tick       |
/// | 5  | `FAULT_LOSS` | fault model, frontchannel          | `broadcast_loss > 0`  |
/// | 6  | `FAULT_REQ`  | fault model, backchannel           | `request_loss > 0`    |
/// | 7  | `RETRY`      | `bpp_client::retry` jitter         | `jitter > 0`          |
/// | 8  | `FLEET`      | `bpp_client::arena` client fleet   | `population` = fleet  |
/// | 9  | `CRASH`      | crash model, MTBF inter-crash draws| `crash.mtbf > 0`      |
///
/// Streams 0–4 are golden-pinned from the base system; 5–7 belong to the
/// fault model and are seeded only when the corresponding knob is enabled;
/// 8 belongs to the million-client extension and is drawn only when
/// `population` selects a real fleet; 9 belongs to the crash–recovery
/// domain and is seeded only when `crash.mtbf > 0` (an explicit crash
/// schedule draws nothing).
/// `bpp-lint` rule D1 enforces that (a) every `stream_rng`/`.named` call
/// outside `crates/sim` names one of these constants and (b) the ids here
/// stay unique and documented. `bpp_client` cannot depend on this crate,
/// so it mirrors its one stream as `bpp_client::streams::RETRY`; the
/// `client_retry_stream_mirror_matches` test pins the two together.
pub mod streams {
    /// 0 — server bandwidth MUX coin (`bpp_server::BandwidthMux`), one
    /// draw per slot boundary.
    pub const MUX: u64 = 0;
    /// 1 — Measured Client think times and access draws.
    pub const MC: u64 = 1;
    /// 2 — Virtual Client population think times and access draws.
    pub const VC: u64 = 2;
    /// 3 — noise permutation of the access pattern
    /// (`bpp_workload::NoisePermutation`), drawn once at world build.
    pub const NOISE: u64 = 3;
    /// 4 — server-side update process (page staleness experiments).
    pub const UPDATE: u64 = 4;
    /// 5 — fault model: frontchannel page-loss coins, one per
    /// page-carrying slot, drawn only when `broadcast_loss > 0`.
    pub const FAULT_LOSS: u64 = 5;
    /// 6 — fault model: backchannel request-transit coins, one per send
    /// (position depends only on the send count, never on server state).
    pub const FAULT_REQ: u64 = 6;
    /// 7 — retry backoff jitter (`bpp_client::retry`), drawn only when
    /// `jitter > 0`; mirrored as `bpp_client::streams::RETRY`.
    pub const RETRY: u64 = 7;
    /// 8 — the arena client fleet (`bpp_client::arena`): think times,
    /// access draws and retry jitter of every fleet client, drawn only
    /// when `population` selects a real fleet (`fleet_clients > 0`).
    pub const FLEET: u64 = 8;
    /// 9 — crash model: exponential inter-crash draws, one per crash,
    /// seeded and drawn only when `crash.mtbf > 0` (explicit schedules
    /// are deterministic and draw nothing).
    pub const CRASH: u64 = 9;
}

/// Events of the integrated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A broadcast slot boundary (integer times).
    Slot,
    /// The Measured Client wakes from its think time.
    McWake,
    /// A pull-request retry timer expired (fault model). `gen` identifies
    /// the access that armed the timer: a stale timer — its access already
    /// completed — is ignored on the generation mismatch.
    McRetry {
        /// Generation counter of the MC access that armed this timer.
        gen: u64,
    },
    /// A fleet client finishes thinking and begins an access
    /// (million-client extension; never scheduled under the aggregate
    /// population).
    FleetWake {
        /// Dense arena index of the client.
        client: u32,
    },
    /// A fleet client's pull-request retry timer expired. Like `McRetry`,
    /// `gen` identifies the access that armed the timer.
    FleetRetry {
        /// Dense arena index of the client.
        client: u32,
        /// Arena retry generation of the access that armed this timer.
        gen: u32,
    },
}

/// Per-kind slot counters over the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotAccounting {
    /// Slots carrying a page of the periodic program.
    pub push_pages: u64,
    /// Slots carrying a pull response.
    pub pull_pages: u64,
    /// Program padding slots (chunking remainder).
    pub empty: u64,
    /// Idle slots (no program and an empty queue — Pure-Pull only).
    pub idle: u64,
}

impl SlotAccounting {
    /// Total slots elapsed.
    pub fn total(&self) -> u64 {
        self.push_pages + self.pull_pages + self.empty + self.idle
    }

    /// Fraction of slots that served pulls.
    pub fn pull_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.pull_pages as f64 / t as f64
        }
    }
}

/// Measurement phase of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Filling the MC cache (steady-state protocol, stage 1).
    CacheWarmup,
    /// Discarding the first accesses after the cache filled (stage 2).
    Skip,
    /// Recording response times (stage 3).
    Measure,
    /// The Figure-4 cold-start experiment: timing cache acquisition.
    WarmupExperiment,
}

/// The server-side update process of the \[Acha96b\] extension: pages are
/// updated at `rate` per broadcast unit; each update invalidates any cached
/// copy at the Measured Client. (The Virtual Client's static steady-state
/// cache is not perturbed — a documented simplification: its role is to
/// generate backchannel load, and Acha96b's autoprefetch keeps warmed
/// caches near-fresh at the moderate rates studied here.)
#[derive(Debug, Clone)]
struct UpdateProcess {
    rate: f64,
    correlation: f64,
    next_at: Time,
    sampler: bpp_workload::AliasTable,
    rng: Xoshiro256pp,
    /// Total updates applied.
    count: u64,
    /// Updates that invalidated an MC-cached page.
    mc_invalidations: u64,
}

impl UpdateProcess {
    fn drain(&mut self, until: Time, mc: &mut MeasuredClient) {
        while self.next_at < until {
            let db = self.sampler.len();
            let item = if self.correlation >= 1.0
                || (self.correlation > 0.0 && self.rng.random::<f64>() < self.correlation)
            {
                self.sampler.sample(&mut self.rng)
            } else {
                self.rng.random_range(0..db)
            };
            self.count += 1;
            if mc.invalidate(PageId(item as u32)) {
                self.mc_invalidations += 1;
            }
            let u: f64 = self.rng.random();
            self.next_at += -(1.0 - u).ln() / self.rate;
        }
    }
}

/// What the sender learns from one backchannel send.
///
/// The paper's channel is silent: a request is delivered, lost, browned
/// out or queue-dropped and the client hears nothing either way. The
/// crash domain adds two *feedback* outcomes — a dead server fails the
/// connection fast, and the admission layer bounces with a retry-after
/// hint — which the retry paths fold into their next delay.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SendOutcome {
    /// No feedback (the legacy path, whatever happened in transit).
    Silent,
    /// The server is down; the connection attempt failed fast.
    Refused,
    /// The admission token bucket bounced the request with this hint.
    RetryAfter(f64),
}

/// Stretch a retry delay after a send with feedback: take the max of the
/// client's own backoff and the server's retry-after hint, then spread
/// the reconnect herd with a uniform jitter factor in
/// `[1, 1 + jitter)`. Draws from `rng` only when the jitter knob is on
/// *and* the send got feedback, so crash-disabled runs draw nothing
/// extra from any stream.
fn reconnect_delay(base: f64, outcome: SendOutcome, jitter: f64, rng: &mut Xoshiro256pp) -> f64 {
    let floor = match outcome {
        SendOutcome::Silent => return base,
        SendOutcome::Refused => base,
        SendOutcome::RetryAfter(hint) => base.max(hint),
    };
    if jitter > 0.0 {
        let u: f64 = rng.random();
        floor * (1.0 + jitter * u)
    } else {
        floor
    }
}

/// The crash–recovery state machine (constructed only when crashes are
/// configured; see [`CrashConfig`]).
///
/// Crash and restart edges are detected at slot boundaries. A crash
/// drains the request queue (orphaning every pending request), resets the
/// saturation detector and adaptive controller, and silences the
/// broadcast until `down_until`. After the restart the server is
/// `recovering` until the Measured Client's response EWMA returns to
/// within `recovery_epsilon` of its pre-crash level; the largest
/// request-grain queue depth seen while recovering is the thundering-herd
/// signature.
#[derive(Debug, Clone)]
struct CrashState {
    cfg: CrashConfig,
    /// Exponential inter-crash draws; `None` under an explicit schedule.
    rng: Option<Xoshiro256pp>,
    /// Remaining explicit crash times (absolute, ascending).
    schedule: std::collections::VecDeque<f64>,
    next_crash_at: f64,
    down: bool,
    down_until: f64,
    recovering: bool,
    restart_at: f64,
    /// Response-time EWMA feeding the recovery detector (fixed smoothing:
    /// the detector is diagnostic, not a control loop).
    resp_ewma: Ewma,
    /// EWMA level snapshotted at the last crash edge.
    pre_crash_level: f64,
    crashes: u64,
    /// Requests drained from the queue at crash edges (request grain).
    orphaned_drained: u64,
    /// Requests refused while the server was down.
    refused_down: u64,
    down_slots: u64,
    herd_peak_depth: u64,
    recoveries: u64,
    ttr_sum: f64,
    ttr_max: f64,
    first_crash_at: Option<f64>,
}

impl CrashState {
    /// Smoothing factor of the recovery detector's response EWMA.
    const RESPONSE_SMOOTHING: f64 = 0.1;

    fn new(cfg: CrashConfig, seed: u64) -> Self {
        let mut rng = (cfg.mtbf > 0.0).then(|| stream_rng(seed, streams::CRASH));
        let mut schedule: std::collections::VecDeque<f64> = cfg.schedule.iter().copied().collect();
        let next_crash_at = match &mut rng {
            Some(r) => Self::draw_interval(cfg.mtbf, r),
            None => schedule.pop_front().unwrap_or(f64::INFINITY),
        };
        CrashState {
            cfg,
            rng,
            schedule,
            next_crash_at,
            down: false,
            down_until: 0.0,
            recovering: false,
            restart_at: 0.0,
            resp_ewma: Ewma::new(Self::RESPONSE_SMOOTHING),
            pre_crash_level: 0.0,
            crashes: 0,
            orphaned_drained: 0,
            refused_down: 0,
            down_slots: 0,
            herd_peak_depth: 0,
            recoveries: 0,
            ttr_sum: 0.0,
            ttr_max: 0.0,
            first_crash_at: None,
        }
    }

    fn draw_interval(mtbf: f64, rng: &mut Xoshiro256pp) -> f64 {
        let u: f64 = rng.random();
        -mtbf * (1.0 - u).ln()
    }

    /// Arm the next crash after a restart at `now`. MTBF is measured
    /// restart-to-crash; explicit schedule entries that fell inside the
    /// downtime are skipped (the server was already dead).
    fn schedule_next(&mut self, now: f64) {
        self.next_crash_at = match &mut self.rng {
            Some(r) => now + Self::draw_interval(self.cfg.mtbf, r),
            None => loop {
                match self.schedule.pop_front() {
                    Some(t) if t <= now => continue,
                    Some(t) => break t,
                    None => break f64::INFINITY,
                }
            },
        };
    }
}

/// One channel's pull service in the K-channel extension: its own bounded
/// queue, PullBW coin and (when degradation is configured) saturation
/// watcher. The backchannel is sharded by tuned channel so a pull response
/// flies on the channel its requesters are listening to.
struct PullShard {
    queue: RequestQueue,
    mux: BandwidthMux,
    saturation: Option<SaturationDetector>,
}

/// Everything the K-channel extension adds to the world. Built only when
/// `num_channels > 1`; a single-channel run allocates none of this and
/// executes the exact legacy instruction stream (the golden-safety
/// invariant of the extension).
struct MultiChannelState {
    /// The generated K-channel program — conflict-free by construction
    /// (every access set confined to one channel; bpp-verify rule V6).
    channels: MultiChannelProgram,
    /// Per-channel schedule cursors, advanced in lock step: every channel
    /// carries one slot per broadcast unit, so K channels are K-fold
    /// aggregate bandwidth.
    cursors: Vec<usize>,
    /// Per-channel threshold filters (each channel has its own cycle).
    filters: Vec<ThresholdFilter>,
    /// Per-channel pull service.
    shards: Vec<PullShard>,
    /// The channel the Measured Client is tuned to. Set on every miss
    /// (via [`best_channel`] / [`fallback_channel`]) and left in place
    /// after delivery — an idle single-tuner radio stays where it was,
    /// which is what gates prefetch to one channel at a time.
    mc_tuned: usize,
    /// Per-channel brownout phase shifts: channel `k`'s backchannel judges
    /// brownout windows at `now + shift[k]`, staggering the windows so one
    /// brownout never blacks out every shard at once. Channel 0's shift is
    /// a whole period — i.e. the unshifted base phase.
    brownout_shifts: Vec<f64>,
}

/// The assembled simulation state.
pub struct World {
    program: BroadcastProgram,
    cursor: usize,
    queue: RequestQueue,
    mux: BandwidthMux,
    mc: MeasuredClient,
    vc: Option<VirtualClient>,
    /// The arena-backed real client fleet (million-client extension);
    /// `None` under the aggregate population, where the Virtual Client
    /// stands in and the instruction stream is byte-identical to the
    /// pre-fleet simulator.
    fleet: Option<ClientArena>,
    /// The K-channel extension (`num_channels > 1` only); `None` runs the
    /// single-channel world byte-identically to the pre-extension code.
    multi: Option<MultiChannelState>,
    rng_fleet: Xoshiro256pp,
    vc_threshold: ThresholdFilter,
    next_vc_arrival: Time,
    has_backchannel: bool,
    prefetch: bool,
    updates: Option<UpdateProcess>,
    rng_mux: Xoshiro256pp,
    rng_mc: Xoshiro256pp,
    rng_vc: Xoshiro256pp,
    protocol: MeasurementProtocol,
    phase: Phase,
    skip_left: u64,
    warmup_accesses: u64,
    responses: BatchMeans,
    response_dist: Histogram,
    response_spread: Welford,
    queue_stats_at_measure: Option<QueueStats>,
    slots: SlotAccounting,
    adaptive: Option<crate::adaptive::AdaptiveController>,
    done: bool,
    // --- Fault model (all inert when FaultConfig is none()). ---
    /// Lossy channels + brownouts; `None` when no channel faults are
    /// configured (then no fault streams are ever seeded or drawn).
    fault: Option<FaultLayer>,
    /// Whether any part of the fault model is active (gates FaultReport).
    fault_enabled: bool,
    /// Queue-occupancy watcher shedding pull bandwidth while saturated.
    saturation: Option<SaturationDetector>,
    /// The configured pull bandwidth that saturation multiplies.
    base_pull_bw: f64,
    retry: RetryPolicy,
    retry_state: RetryState,
    /// Bumped on every MC miss; stale McRetry timers fail the match.
    retry_gen: u64,
    rng_retry: Xoshiro256pp,
    retries: u64,
    retries_exhausted: u64,
    /// Observability state; `None` (the default) records nothing and keeps
    /// the run's instruction stream identical to a build without the layer.
    obs: Option<ObsState>,
    // --- Crash–recovery domain (both None/0 when crashes are off). ---
    /// Crash state machine; `None` means no crash source is configured.
    crash: Option<CrashState>,
    /// Backchannel token bucket; `None` when admission is disabled.
    admission: Option<Admission>,
    /// Reconnect-jitter fraction (0 draws nothing; see `reconnect_delay`).
    reconnect_jitter: f64,
    // --- Conservation audit (plain counters: no RNG, no JSON keys). ---
    /// Backchannel requests sent (MC + VC + fleet, retries included).
    audit_sent: u64,
    /// Largest entry-grain queue depth sampled at a slot boundary.
    peak_queue_depth: u64,
    /// Latest event time the handler has seen (monotonicity check).
    last_event_time: f64,
    /// Times the event clock ran backwards (a clean run keeps this 0).
    time_regressions: u64,
}

impl World {
    /// Build a steady-state world (phase machine `CacheWarmup → Measure`).
    pub fn steady_state(cfg: &SystemConfig, protocol: &MeasurementProtocol) -> Self {
        Self::build(cfg, protocol, Phase::CacheWarmup, false)
    }

    /// Build a warm-up-experiment world (Figure 4): the MC starts cold and
    /// a [`WarmupTracker`] times the acquisition of its ideal cache content.
    pub fn warmup_experiment(cfg: &SystemConfig, protocol: &MeasurementProtocol) -> Self {
        Self::build(cfg, protocol, Phase::WarmupExperiment, true)
    }

    fn build(
        cfg: &SystemConfig,
        protocol: &MeasurementProtocol,
        phase: Phase,
        track_warmup: bool,
    ) -> Self {
        cfg.assert_valid();

        // --- Broadcast program (the server builds it for the population
        // pattern; Pure-Pull broadcasts nothing). The ranked assignment is
        // kept because the K-channel generator partitions it. ---
        let ranking = identity_ranking(cfg.db_size);
        let assignment = if cfg.algorithm == Algorithm::PurePull {
            let spec = DiskSpec::flat(cfg.db_size);
            let mut a = Assignment::from_ranking(&ranking, &spec);
            a.chop(cfg.db_size);
            a
        } else {
            let spec = DiskSpec::new(cfg.disk_sizes.clone(), cfg.rel_freqs.clone());
            let mut a = if cfg.offset {
                Assignment::with_offset(&ranking, &spec, cfg.cache_size)
            } else {
                Assignment::from_ranking(&ranking, &spec)
            };
            a.chop(cfg.chop);
            a
        };
        let program = BroadcastProgram::generate(&assignment, cfg.db_size);

        // --- Access patterns. ---
        let zipf = Zipf::new(cfg.db_size, cfg.zipf_theta);
        let population = AccessPattern::population(&zipf);
        let mut rng_noise = stream_rng(cfg.seed, streams::NOISE);
        let mc_pattern = AccessPattern::new(
            &zipf,
            NoisePermutation::new(cfg.db_size, cfg.noise, &mut rng_noise),
        );

        // --- Per-page broadcast frequencies (the PIX denominator). ---
        let freqs: Vec<usize> = (0..cfg.db_size)
            .map(|i| program.frequency(PageId(i as u32)))
            .collect();

        // --- MC cache. ---
        let policy = cfg.effective_cache_policy();
        let make_score_cache = |probs: &[f64]| -> StaticScoreCache {
            match policy {
                CachePolicy::Pix => StaticScoreCache::pix(cfg.cache_size, probs, &freqs),
                CachePolicy::P => StaticScoreCache::p(cfg.cache_size, probs),
                // Unreachable for LRU/LFU; see below.
                CachePolicy::Lru | CachePolicy::Lfu => unreachable!(),
            }
        };
        let (mc_cache, mc_ideal): (Box<dyn ReplacementPolicy>, Vec<usize>) = match policy {
            CachePolicy::Pix | CachePolicy::P => {
                let c = make_score_cache(mc_pattern.probs());
                let ideal = c.ideal_content();
                (Box::new(c), ideal)
            }
            CachePolicy::Lru => (
                Box::new(LruCache::new(cfg.cache_size)),
                top_by_prob(&mc_pattern, cfg.cache_size),
            ),
            CachePolicy::Lfu => (
                Box::new(LfuCache::new(cfg.cache_size)),
                top_by_prob(&mc_pattern, cfg.cache_size),
            ),
        };

        let threshold = match cfg.algorithm {
            Algorithm::PurePull => ThresholdFilter::pass_all(),
            _ => ThresholdFilter::from_percentage(cfg.thres_perc, program.major_cycle()),
        };

        let mut mc = MeasuredClient::new(
            mc_pattern,
            mc_cache,
            ThinkTime::Fixed(cfg.mc_think_time),
            threshold,
        );
        if track_warmup {
            mc.attach_warmup(WarmupTracker::new(cfg.db_size, &mc_ideal));
        }

        // --- Population model (only when a backchannel exists: under
        // Pure-Push other clients cannot influence the MC at all). The
        // aggregate population is the paper's open-loop Virtual Client; a
        // fleet population replaces it with `fleet_clients` real
        // closed-loop clients in a `ClientArena`, each thinking for
        // `fleet_clients × MC_ThinkTime / ThinkTimeRatio` on average so
        // the fleet's aggregate access rate matches the VC it stands in
        // for (and converges to it as the fleet grows and per-client
        // think time dwarfs per-request flow time). ---
        let has_backchannel = cfg.algorithm != Algorithm::PurePush;
        let (vc, fleet) = if !has_backchannel {
            (None, None)
        } else {
            let steady: Vec<usize> = match cfg.algorithm {
                Algorithm::PurePull => {
                    StaticScoreCache::p(cfg.cache_size, population.probs()).ideal_content()
                }
                _ => StaticScoreCache::pix(cfg.cache_size, population.probs(), &freqs)
                    .ideal_content(),
            };
            if cfg.population.is_fleet() {
                let n = cfg.population.fleet_clients;
                // SteadyStatePerc becomes the warmed fraction: the first
                // ⌊n·ssp⌋ clients start with the ideal cache content, the
                // rest start cold (and warm up through real deliveries).
                let warm = ((n as f64) * cfg.steady_state_perc).floor() as usize;
                let arena = ClientArena::new(
                    n,
                    cfg.db_size,
                    &steady,
                    warm.min(n),
                    ThinkTime::Exponential {
                        mean: n as f64 * cfg.vc_mean_interarrival(),
                    },
                    threshold,
                    population,
                );
                (None, Some(arena))
            } else {
                let vc = VirtualClient::new(
                    population,
                    &steady,
                    cfg.steady_state_perc,
                    cfg.vc_mean_interarrival(),
                );
                (Some(vc), None)
            }
        };

        // --- Fault model: construct only what the config enables, so the
        // disabled path is bitwise-identical to the pre-fault simulator. ---
        let fault_cfg = cfg.fault.clone();
        let has_channel_faults = fault_cfg.broadcast_loss > 0.0
            || fault_cfg.request_loss > 0.0
            || fault_cfg.has_brownouts();
        let crash_active = fault_cfg.crash.enabled();
        let fleet_active = fleet.is_some();
        let discipline = match cfg.queue_discipline {
            QueueDiscipline::Fifo => Discipline::Fifo,
            QueueDiscipline::MostRequested => Discipline::MostRequested,
        };
        let make_queue = || {
            let mut q = RequestQueue::with_discipline(cfg.server_queue_size, discipline);
            q.set_overflow(fault_cfg.overflow);
            if cfg.obs.enabled {
                q.track_waits();
            }
            q
        };
        let queue = make_queue();

        // --- K-channel extension: partition the ranked assignment across
        // `num_channels` lock-step channels and shard the pull service per
        // channel. The generator confines every hot access set to one
        // channel, so the placement passes verify rule V6 by construction;
        // the access sets are derived exactly as bpp-verify derives them
        // (hottest uncached broadcast pages against the ideal cache), so
        // the simulated placement is the verified placement. ---
        let multi = (cfg.num_channels > 1).then(|| {
            let weights = zipf.probs().to_vec();
            let cached = crate::analytic::ideal_cache(cfg, &program);
            let sets = hot_access_sets(&program, &weights, &cached);
            let channels =
                MultiChannelProgram::generate(&assignment, cfg.db_size, cfg.num_channels, &sets);
            let filters: Vec<ThresholdFilter> = (0..cfg.num_channels)
                .map(|k| {
                    let cycle = channels.channel(k).major_cycle();
                    if cfg.algorithm == Algorithm::PurePull || cycle == 0 {
                        ThresholdFilter::pass_all()
                    } else {
                        ThresholdFilter::from_percentage(cfg.thres_perc, cycle)
                    }
                })
                .collect();
            let shards: Vec<PullShard> = (0..cfg.num_channels)
                .map(|_| PullShard {
                    queue: make_queue(),
                    mux: BandwidthMux::new(cfg.effective_pull_bw()),
                    saturation: fault_cfg
                        .degrade
                        .enabled()
                        .then(|| SaturationDetector::new(fault_cfg.degrade)),
                })
                .collect();
            let k_f = cfg.num_channels as f64;
            let brownout_shifts = (0..cfg.num_channels)
                .map(|k| (cfg.num_channels - k) as f64 * fault_cfg.brownout_period / k_f)
                .collect();
            MultiChannelState {
                channels,
                cursors: vec![0; cfg.num_channels],
                filters,
                shards,
                mc_tuned: 0,
                brownout_shifts,
            }
        });

        World {
            program,
            cursor: 0,
            queue,
            mux: BandwidthMux::new(cfg.effective_pull_bw()),
            mc,
            vc,
            fleet,
            multi,
            // bpp-lint: allow(D7): fleet-owned bpp-client arena forwards draws into bpp-workload samplers; every draw is fleet-initiated
            rng_fleet: stream_rng(cfg.seed, streams::FLEET),
            vc_threshold: threshold,
            next_vc_arrival: 0.0,
            has_backchannel,
            prefetch: cfg.mc_prefetch,
            updates: (cfg.update_rate > 0.0).then(|| UpdateProcess {
                rate: cfg.update_rate,
                correlation: cfg.update_access_correlation,
                next_at: 0.0,
                sampler: bpp_workload::AliasTable::new(
                    Zipf::new(cfg.db_size, cfg.zipf_theta).probs(),
                ),
                rng: stream_rng(cfg.seed, streams::UPDATE),
                count: 0,
                mc_invalidations: 0,
            }),
            rng_mux: stream_rng(cfg.seed, streams::MUX),
            // bpp-lint: allow(D7): client-owned bpp-workload samplers draw on the MC stream; every draw is client-initiated
            rng_mc: stream_rng(cfg.seed, streams::MC),
            // bpp-lint: allow(D7): client-owned bpp-workload samplers draw on the VC stream; every draw is client-initiated
            rng_vc: stream_rng(cfg.seed, streams::VC),
            protocol: *protocol,
            phase,
            skip_left: 0,
            warmup_accesses: 0,
            responses: BatchMeans::new(protocol.batch_size),
            // 4-unit bins out to 4x the paper's major cycle; heavier tails
            // land in the overflow bucket and void the affected quantiles.
            response_dist: Histogram::new(4.0, 1608),
            response_spread: Welford::new(),
            queue_stats_at_measure: None,
            slots: SlotAccounting::default(),
            adaptive: None,
            done: false,
            fault: has_channel_faults.then(|| {
                FaultLayer::new(
                    fault_cfg.clone(),
                    stream_rng(cfg.seed, streams::FAULT_LOSS),
                    stream_rng(cfg.seed, streams::FAULT_REQ),
                )
            }),
            fault_enabled: fault_cfg.enabled(),
            // In K-channel mode the shards own the detectors instead.
            saturation: (fault_cfg.degrade.enabled() && cfg.num_channels == 1)
                .then(|| SaturationDetector::new(fault_cfg.degrade)),
            base_pull_bw: cfg.effective_pull_bw(),
            retry: fault_cfg.retry,
            retry_state: RetryState::default(),
            retry_gen: 0,
            rng_retry: stream_rng(cfg.seed, streams::RETRY),
            retries: 0,
            retries_exhausted: 0,
            obs: cfg.obs.enabled.then(|| {
                let mut o = ObsState::new(cfg.obs);
                if fleet_active {
                    o.enable_fleet();
                }
                if cfg.obs.mc_hit_rate {
                    o.enable_mc_hit_rate();
                }
                if cfg.obs.disk_share {
                    o.enable_disk_share(cfg.rel_freqs.len());
                }
                if crash_active {
                    o.enable_fault_state();
                }
                if cfg.num_channels > 1 {
                    o.enable_channels(cfg.num_channels, fault_cfg.has_brownouts());
                }
                o
            }),
            crash: crash_active.then(|| CrashState::new(fault_cfg.crash.clone(), cfg.seed)),
            admission: fault_cfg
                .admission
                .enabled()
                .then(|| Admission::new(fault_cfg.admission)),
            reconnect_jitter: fault_cfg.crash.reconnect_jitter,
            audit_sent: 0,
            peak_queue_depth: 0,
            last_event_time: 0.0,
            time_regressions: 0,
        }
    }

    /// Enable the adaptive-IPP controller (extension; see
    /// [`crate::adaptive`]). Must be called before [`World::into_engine`].
    pub fn enable_adaptive(&mut self, ctrl: crate::adaptive::AdaptiveController) {
        self.adaptive = Some(ctrl);
    }

    /// The adaptive controller, if enabled.
    pub fn adaptive(&self) -> Option<&crate::adaptive::AdaptiveController> {
        self.adaptive.as_ref()
    }

    /// Prime the initial events and wrap the world in an engine. When the
    /// observability layer is on, the engine gets its dispatch probe too.
    pub fn into_engine(mut self) -> Engine<World> {
        if let Some(vc) = &self.vc {
            self.next_vc_arrival = vc.next_interarrival(&mut self.rng_vc);
        } else {
            self.next_vc_arrival = f64::INFINITY;
        }
        // Stagger the fleet's first accesses by one think draw each — an
        // exponential think time is memoryless, so this starts the fleet
        // in its stationary arrival regime instead of a thundering herd.
        let fleet_wakes: Vec<f64> = match &self.fleet {
            Some(fleet) => (0..fleet.len())
                .map(|_| fleet.draw_think(&mut self.rng_fleet))
                .collect(),
            None => Vec::new(),
        };
        let engine_obs = self
            .obs
            .as_ref()
            .map(|o| EngineObs::new(o.cfg.timeline_stride));
        let mut engine = Engine::new(self);
        if let Some(probe) = engine_obs {
            engine.enable_obs(probe);
        }
        engine.scheduler().schedule_at(0.0, Event::Slot);
        engine.scheduler().schedule_at(0.0, Event::McWake);
        for (client, at) in fleet_wakes.into_iter().enumerate() {
            engine.scheduler().schedule_at(
                at,
                Event::FleetWake {
                    client: client as u32,
                },
            );
        }
        engine
    }

    /// True once the run's stop criterion is met.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Current measurement phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Response-time estimator (valid after the Measure phase started).
    pub fn responses(&self) -> &BatchMeans {
        &self.responses
    }

    /// Response-time histogram over the Measure phase (4-unit bins).
    pub fn response_dist(&self) -> &Histogram {
        &self.response_dist
    }

    /// Min/max/variance of measured responses.
    pub fn response_spread(&self) -> &Welford {
        &self.response_spread
    }

    /// The server queue (for statistics).
    pub fn queue(&self) -> &RequestQueue {
        &self.queue
    }

    /// Whole-run queue statistics, summed over every pull shard in
    /// K-channel mode (the legacy queue is idle there and contributes
    /// zeros; in single-channel mode it is the only term).
    pub fn total_queue_stats(&self) -> QueueStats {
        let mut total = *self.queue.stats();
        if let Some(m) = &self.multi {
            for s in &m.shards {
                let q = s.queue.stats();
                total.received += q.received;
                total.enqueued += q.enqueued;
                total.coalesced += q.coalesced;
                total.dropped_full += q.dropped_full;
                total.dropped_evicted += q.dropped_evicted;
                total.served += q.served;
                total.served_requests += q.served_requests;
                total.evicted_requests += q.evicted_requests;
            }
        }
        total
    }

    /// Per-run saturation-detector totals, summed over every shard in
    /// K-channel mode: `(degradations, recoveries, saturated_slots)`, or
    /// `None` when no detector is configured anywhere.
    fn saturation_totals(&self) -> Option<(u64, u64, u64)> {
        let mut any = false;
        let mut t = (0u64, 0u64, 0u64);
        let mut fold = |sat: &SaturationDetector| {
            any = true;
            let s = sat.stats();
            t.0 += s.degradations;
            t.1 += s.recoveries;
            t.2 += s.saturated_slots;
        };
        if let Some(sat) = &self.saturation {
            fold(sat);
        }
        if let Some(m) = &self.multi {
            for s in &m.shards {
                if let Some(sat) = &s.saturation {
                    fold(sat);
                }
            }
        }
        any.then_some(t)
    }

    /// Queue statistics restricted to the measurement window (total minus
    /// the snapshot taken when Measure began). Whole-run stats if the run
    /// never reached Measure.
    pub fn measured_queue_stats(&self) -> QueueStats {
        let total = self.total_queue_stats();
        match self.queue_stats_at_measure {
            None => total,
            Some(at) => QueueStats {
                received: total.received - at.received,
                enqueued: total.enqueued - at.enqueued,
                coalesced: total.coalesced - at.coalesced,
                dropped_full: total.dropped_full - at.dropped_full,
                dropped_evicted: total.dropped_evicted - at.dropped_evicted,
                served: total.served - at.served,
                served_requests: total.served_requests - at.served_requests,
                evicted_requests: total.evicted_requests - at.evicted_requests,
            },
        }
    }

    /// What the fault model did to this run, or `None` when it is
    /// disabled (keeping serialized results identical to pre-fault output).
    pub fn fault_report(&self) -> Option<FaultReport> {
        if !self.fault_enabled {
            return None;
        }
        let channel = self
            .fault
            .as_ref()
            .map(|f| *f.counters())
            .unwrap_or_default();
        let (degradations, recoveries, saturated_slots) =
            self.saturation_totals().unwrap_or_default();
        let q = self.total_queue_stats();
        Some(FaultReport {
            channel,
            dropped_full: q.dropped_full,
            dropped_evicted: q.dropped_evicted,
            retries: self.retries,
            retries_exhausted: self.retries_exhausted,
            degradations,
            recoveries,
            saturated_slots,
            crash: self.crash_report(),
        })
    }

    /// What the crash–recovery domain did to this run, or `None` when
    /// neither crashes nor admission control are configured.
    pub fn crash_report(&self) -> Option<CrashReport> {
        if self.crash.is_none() && self.admission.is_none() {
            return None;
        }
        let a = self
            .admission
            .as_ref()
            .map(|a| *a.stats())
            .unwrap_or_default();
        let mut report = CrashReport {
            admitted: a.admitted,
            admission_rejected: a.rejected,
            ..CrashReport::default()
        };
        if let Some(c) = &self.crash {
            report.crashes = c.crashes;
            report.orphaned = c.orphaned_drained + c.refused_down;
            report.down_slots = c.down_slots;
            report.herd_peak_depth = c.herd_peak_depth;
            report.recoveries = c.recoveries;
            report.mean_time_to_recover = if c.recoveries > 0 {
                c.ttr_sum / c.recoveries as f64
            } else {
                0.0
            };
            report.max_time_to_recover = c.ttr_max;
            report.first_crash_at = c.first_crash_at;
        }
        Some(report)
    }

    /// The auditor's account of every backchannel request: available after
    /// any run (audit counters are unconditional), meaningful hard-checked
    /// invariants for chaos runs (see
    /// [`ConservationLedger::assert_clean`]).
    pub fn conservation_ledger(&self) -> ConservationLedger {
        let channel = self
            .fault
            .as_ref()
            .map(|f| *f.counters())
            .unwrap_or_default();
        let q = self.total_queue_stats();
        let in_flight = self.queue.pending_requests()
            + self.multi.as_ref().map_or(0, |m| {
                m.shards.iter().map(|s| s.queue.pending_requests()).sum()
            });
        ConservationLedger {
            sent: self.audit_sent,
            lost_in_transit: channel.requests_lost,
            browned_out: channel.requests_browned_out,
            orphaned: self
                .crash
                .as_ref()
                .map_or(0, |c| c.orphaned_drained + c.refused_down),
            admission_rejected: self.admission.as_ref().map_or(0, |a| a.stats().rejected),
            dropped_full: q.dropped_full,
            evicted: q.evicted_requests,
            served: q.served_requests,
            in_flight_at_end: in_flight,
            peak_queue_depth: self.peak_queue_depth,
            queue_capacity: self.queue.capacity() as u64,
            time_regressions: self.time_regressions,
        }
    }

    /// Re-point the channel loss rates mid-run (chaos-phase transitions).
    /// A no-op when no channel-fault layer was built — the chaos driver
    /// sizes the build config to the schedule's maximum loss so the layer
    /// exists whenever any phase needs it.
    pub fn set_channel_loss(&mut self, broadcast_loss: f64, request_loss: f64) {
        if let Some(f) = &mut self.fault {
            f.set_channel_loss(broadcast_loss, request_loss);
        }
    }

    /// Re-point the brownout window mid-run (chaos-phase transitions). A
    /// no-op without a channel-fault layer, for the same reason as
    /// [`set_channel_loss`](World::set_channel_loss). In K-channel mode the
    /// per-channel phase shifts follow the live period, so the staggering
    /// invariant (`shift[k] = (K-k)·period/K`) survives phase changes.
    pub fn set_brownout(&mut self, period: f64, duration: f64) {
        if let Some(f) = &mut self.fault {
            f.set_brownout(period, duration);
            if let Some(m) = &mut self.multi {
                let k_f = m.brownout_shifts.len() as f64;
                for (k, shift) in m.brownout_shifts.iter_mut().enumerate() {
                    *shift = (m.shards.len() - k) as f64 * period / k_f;
                }
            }
        }
    }

    /// Everything the observability layer collected, or `None` when it is
    /// disabled (keeping serialized results identical to pre-obs output).
    ///
    /// `engine_obs` is the engine's dispatch probe (from
    /// [`Engine::obs`](bpp_sim::Engine::obs)); timelines are sealed at
    /// `t_end`, the final simulated time.
    pub fn obs_report(&self, engine_obs: Option<&EngineObs>, t_end: f64) -> Option<ObsReport> {
        let state = self.obs.as_ref()?;
        let mut report = ObsReport::new();
        if let Some(probe) = engine_obs {
            probe.report_into(t_end, &mut report);
        }
        state.report_into(t_end, &mut report);
        let m = &mut report.metrics;
        m.add("server.slots.push", self.slots.push_pages);
        m.add("server.slots.pull", self.slots.pull_pages);
        m.add("server.slots.empty", self.slots.empty);
        m.add("server.slots.idle", self.slots.idle);
        let q = self.total_queue_stats();
        m.add("server.queue.received", q.received);
        m.add("server.queue.enqueued", q.enqueued);
        m.add("server.queue.coalesced", q.coalesced);
        m.add("server.queue.dropped_full", q.dropped_full);
        m.add("server.queue.dropped_evicted", q.dropped_evicted);
        m.add("server.queue.served", q.served);
        if let Some((degradations, recoveries, saturated_slots)) = self.saturation_totals() {
            m.add("server.saturation.degradations", degradations);
            m.add("server.saturation.recoveries", recoveries);
            m.add("server.saturation.saturated_slots", saturated_slots);
        }
        let mc = self.mc.stats();
        m.add("client.mc.accesses", mc.accesses);
        m.add("client.mc.hits", mc.hits);
        m.add("client.mc.misses", mc.misses);
        m.add("client.mc.requests_sent", mc.requests_sent);
        m.add("client.mc.requests_filtered", mc.requests_filtered());
        m.add("client.mc.completed", mc.completed);
        m.add("client.mc.retries", self.retries);
        m.add("client.mc.retries_exhausted", self.retries_exhausted);
        m.add("client.vc.requests_sent", state.vc_requests_sent);
        m.add("client.vc.requests_filtered", state.vc_requests_filtered);
        // Fleet counters exist only under a fleet population, so every
        // aggregate-population report stays byte-identical.
        if let Some(fleet) = &self.fleet {
            let fs = fleet.stats();
            m.add("client.fleet.clients", fleet.len() as u64);
            m.add("client.fleet.accesses", fs.accesses);
            m.add("client.fleet.hits", fs.hits);
            m.add("client.fleet.requests_sent", fs.requests_sent);
            m.add("client.fleet.requests_filtered", fs.requests_filtered);
            m.add("client.fleet.completed", fs.completed);
            m.add("client.fleet.retries", fs.retries);
            m.add("client.fleet.retries_exhausted", fs.retries_exhausted);
        }
        Some(report)
    }

    /// The Measured Client.
    pub fn mc(&self) -> &MeasuredClient {
        &self.mc
    }

    /// The arena client fleet, when a fleet population is configured.
    pub fn fleet(&self) -> Option<&ClientArena> {
        self.fleet.as_ref()
    }

    /// Slot counters.
    pub fn slots(&self) -> &SlotAccounting {
        &self.slots
    }

    /// The generated broadcast program.
    pub fn program(&self) -> &BroadcastProgram {
        &self.program
    }

    /// Channels the broadcast runs on (1 unless the K-channel extension
    /// is active).
    pub fn num_channels(&self) -> usize {
        self.multi.as_ref().map_or(1, |m| m.shards.len())
    }

    /// The generated K-channel program, when `num_channels > 1`.
    pub fn channels(&self) -> Option<&MultiChannelProgram> {
        self.multi.as_ref().map(|m| &m.channels)
    }

    /// Update-process counters: `(updates applied, MC invalidations)`.
    /// Zeros when the read-only base model is running.
    pub fn update_stats(&self) -> (u64, u64) {
        self.updates
            .as_ref()
            .map_or((0, 0), |u| (u.count, u.mc_invalidations))
    }

    /// One MC access finished (hit or delivered miss) with this response
    /// time; advance the phase machine. When the crash domain is live the
    /// response also feeds the recovery detector's EWMA.
    fn complete_mc_access(&mut self, now: Time, response: f64) {
        let recovered = match &mut self.crash {
            Some(c) => {
                let level = c.resp_ewma.record(response);
                if c.recovering && level <= c.pre_crash_level * (1.0 + c.cfg.recovery_epsilon) {
                    c.recovering = false;
                    c.recoveries += 1;
                    let ttr = now - c.restart_at;
                    c.ttr_sum += ttr;
                    if ttr > c.ttr_max {
                        c.ttr_max = ttr;
                    }
                    Some(ttr)
                } else {
                    None
                }
            }
            None => None,
        };
        if let (Some(obs), Some(ttr)) = (&mut self.obs, recovered) {
            obs.trace(now, "recovered", ttr);
        }
        match self.phase {
            Phase::CacheWarmup => {
                self.warmup_accesses += 1;
                // Under update churn the cache may never fill; the access
                // cap keeps the protocol from stalling there.
                if self.mc.cache().is_full()
                    || self.warmup_accesses >= self.protocol.max_warmup_accesses
                {
                    self.skip_left = self.protocol.skip_accesses;
                    self.phase = Phase::Skip;
                    if self.skip_left == 0 {
                        self.enter_measure();
                    }
                }
            }
            Phase::Skip => {
                self.skip_left -= 1;
                if self.skip_left == 0 {
                    self.enter_measure();
                }
            }
            Phase::Measure => {
                self.responses.record(response);
                self.response_dist.record(response);
                self.response_spread.record(response);
                let n = self.responses.count();
                if n >= self.protocol.max_accesses
                    || (n % self.protocol.batch_size == 0
                        && self.responses.converged(
                            Confidence::P95,
                            self.protocol.rel_precision,
                            self.protocol.min_batches,
                        ))
                {
                    self.done = true;
                }
            }
            Phase::WarmupExperiment => {
                if self.mc.warmup().map(WarmupTracker::complete) == Some(true) {
                    self.done = true;
                }
            }
        }
    }

    fn enter_measure(&mut self) {
        self.phase = Phase::Measure;
        self.queue_stats_at_measure = Some(*self.queue.stats());
    }

    /// Send one backchannel request at time `now` through every configured
    /// layer, in fixed order: transit coin → crashed-server refusal →
    /// brownout → admission bucket → the bounded, coalescing queue.
    ///
    /// The transit coin comes first so the `FAULT_REQ` stream position
    /// depends only on the send count, never on server-side state; the
    /// remaining layers draw no randomness at all. With no crash domain
    /// configured this is exactly the pre-crash delivery path.
    fn submit_request(&mut self, now: Time, page: PageId) -> SendOutcome {
        self.submit_request_in(now, page, None)
    }

    /// [`submit_request`](World::submit_request) with an explicit target:
    /// `Some(k)` lands the request in pull shard `k` (K-channel mode) and
    /// judges brownouts at channel `k`'s phase-shifted clock; `None` is
    /// the single-channel queue at the base brownout phase.
    fn submit_request_in(&mut self, now: Time, page: PageId, shard: Option<usize>) -> SendOutcome {
        self.audit_sent += 1;
        if let Some(f) = &mut self.fault {
            if f.transit_lost() {
                return SendOutcome::Silent;
            }
        }
        if let Some(c) = &mut self.crash {
            if c.down {
                c.refused_down += 1;
                return SendOutcome::Refused;
            }
        }
        let brownout_clock = now
            + shard
                .and_then(|k| self.multi.as_ref().map(|m| m.brownout_shifts[k]))
                .unwrap_or(0.0);
        if let Some(f) = &mut self.fault {
            if f.brownout_discard(brownout_clock) {
                return SendOutcome::Silent;
            }
        }
        if let Some(a) = &mut self.admission {
            if !a.admit(now) {
                return SendOutcome::RetryAfter(a.retry_after());
            }
        }
        match (shard, &mut self.multi) {
            (Some(k), Some(m)) => {
                m.shards[k].queue.submit_at(page, now);
            }
            _ => {
                self.queue.submit_at(page, now);
            }
        }
        SendOutcome::Silent
    }

    /// Detect restart and crash edges at a slot boundary (crash domain
    /// only; callers gate on `self.crash.is_some()`).
    fn crash_edges(&mut self, now: Time) {
        // Restart edge first: the downtime elapsed, the server comes back
        // cold. (A crash can then strike again at this very boundary.)
        let restarted = match &mut self.crash {
            Some(c) if c.down && now >= c.down_until => {
                c.down = false;
                c.recovering = true;
                c.restart_at = now;
                c.schedule_next(now);
                true
            }
            _ => false,
        };
        if restarted {
            if let Some(a) = &mut self.admission {
                a.restart_cold(now);
            }
            if let Some(obs) = &mut self.obs {
                obs.trace(now, "restart", 0.0);
            }
        }
        let crashed = match &mut self.crash {
            Some(c) if !c.down && now >= c.next_crash_at => {
                c.down = true;
                c.down_until = now + c.cfg.downtime;
                c.crashes += 1;
                if c.first_crash_at.is_none() {
                    c.first_crash_at = Some(now);
                }
                // A crash mid-recovery abandons that recovery: it never
                // counts as recovered.
                c.recovering = false;
                c.pre_crash_level = c.resp_ewma.value();
                true
            }
            _ => false,
        };
        if crashed {
            // Volatile server state dies: the queue's pending requests are
            // orphaned, the saturation EWMA and the adaptive controller's
            // learning are gone. Run-level counters survive — they belong
            // to the measurement, not to server memory.
            let mut orphans = self.queue.crash_drain();
            if let Some(m) = &mut self.multi {
                for s in &mut m.shards {
                    orphans += s.queue.crash_drain();
                    if let Some(sat) = &mut s.saturation {
                        sat.crash_reset();
                    }
                }
            }
            if let Some(c) = &mut self.crash {
                c.orphaned_drained += orphans;
            }
            if let Some(sat) = &mut self.saturation {
                sat.crash_reset();
            }
            let agg = self.total_queue_stats();
            if let Some(ctrl) = &mut self.adaptive {
                let (bw, thres) = ctrl.crash_reset(&agg);
                self.mux.set_pull_bw(bw);
                self.base_pull_bw = bw;
                if let Some(m) = &mut self.multi {
                    for shard in &mut m.shards {
                        shard.mux.set_pull_bw(bw);
                    }
                    for k in 0..m.filters.len() {
                        let cycle = m.channels.channel(k).major_cycle();
                        if cycle > 0 {
                            m.filters[k] = ThresholdFilter::from_percentage(thres, cycle);
                        }
                    }
                } else if self.program.major_cycle() > 0 {
                    let f = ThresholdFilter::from_percentage(thres, self.program.major_cycle());
                    self.mc.set_threshold(f);
                    self.vc_threshold = f;
                }
            }
            if let Some(obs) = &mut self.obs {
                obs.trace(now, "crash", orphans as f64);
            }
        }
    }

    /// Process every VC access arriving before `until`.
    ///
    /// Both VC draws (the access and the next inter-arrival) come off
    /// `rng_vc` before the request is submitted; the submit path draws only
    /// from the fault streams, so this ordering keeps the `VC` stream's
    /// draw sequence identical to the pre-observability handler.
    fn drain_vc(&mut self, until: Time) {
        if self.vc.is_none() {
            return;
        }
        while self.next_vc_arrival < until {
            let at = self.next_vc_arrival;
            let Some(vc) = &mut self.vc else {
                return;
            };
            let access = vc.access(&mut self.rng_vc);
            self.next_vc_arrival += vc.next_interarrival(&mut self.rng_vc);
            if let VcAccess::Miss(page) = access {
                // Route the miss: in K-channel mode the access tunes to
                // the best channel and is filtered against that channel's
                // schedule; single-channel keeps the legacy filter.
                let route = match &self.multi {
                    Some(m) => {
                        let k = best_channel(&m.channels, &m.cursors, page)
                            .unwrap_or_else(|| fallback_channel(page, m.shards.len()));
                        m.filters[k]
                            .should_request(m.channels.channel(k), page, m.cursors[k])
                            .then_some(Some(k))
                    }
                    None => self
                        .vc_threshold
                        .should_request(&self.program, page, self.cursor)
                        .then_some(None),
                };
                if let Some(shard) = route {
                    // VC requests ride the same lossy backchannel as the
                    // MC's (brownouts judged at the actual arrival time).
                    self.submit_request_in(at, page, shard);
                    if let Some(obs) = &mut self.obs {
                        obs.vc_requests_sent += 1;
                    }
                } else if let Some(obs) = &mut self.obs {
                    obs.vc_requests_filtered += 1;
                }
            }
        }
    }

    /// The pull shard a fleet client's request belongs to: the channel it
    /// tuned to at the miss, or the page's deterministic fallback shard.
    /// `None` in single-channel mode.
    fn fleet_shard(&self, client: u32, page: PageId) -> Option<usize> {
        let m = self.multi.as_ref()?;
        let tuned = self
            .fleet
            .as_ref()
            .and_then(|fleet| fleet.tuned_channel(client));
        Some(tuned.unwrap_or_else(|| fallback_channel(page, m.shards.len())))
    }

    /// The Measured Client wakes in K-channel mode: the access draws the
    /// exact same `MC`-stream variates as the single-channel path, then
    /// tunes to the channel minimizing its expected wait for the missed
    /// page and requests through that channel's shard.
    fn mc_wake_multi(&mut self, now: Time, sched: &mut Scheduler<Event>) {
        // bpp-lint: allow(D3): dispatch guard — Event::McWake routes here only when multi is Some
        let m = self.multi.as_ref().expect("caller checked multi mode");
        let (outcome, tuned) =
            self.mc
                .begin_access_tuned(now, &m.channels, &m.cursors, &m.filters, &mut self.rng_mc);
        let num_shards = m.shards.len();
        match outcome {
            BeginOutcome::Hit { .. } => {
                self.complete_mc_access(now, 0.0);
                let think = self.mc.draw_think(&mut self.rng_mc);
                sched.schedule_in(think, Event::McWake);
            }
            BeginOutcome::Miss { page, send_request } => {
                let k = tuned.unwrap_or_else(|| fallback_channel(page, num_shards));
                // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
                self.multi.as_mut().expect("multi mode").mc_tuned = k;
                // Invalidate any retry timer armed for an earlier access,
                // whether or not this one sends a request.
                self.retry_gen += 1;
                if self.has_backchannel && send_request {
                    let outcome = self.submit_request_in(now, page, Some(k));
                    if self.retry.enabled() {
                        self.retry_state = RetryState::arm();
                        if let Some(d) = self
                            .retry_state
                            .next_delay(&self.retry, &mut self.rng_retry)
                        {
                            let d = reconnect_delay(
                                d,
                                outcome,
                                self.reconnect_jitter,
                                &mut self.rng_retry,
                            );
                            sched.schedule_at(
                                now + d,
                                Event::McRetry {
                                    gen: self.retry_gen,
                                },
                            );
                        }
                    }
                }
                // The client now blocks; `multi_slot` completes it.
            }
        }
    }

    /// One broadcast unit of the K-channel world. Every channel carries
    /// one slot per unit (K channels = K-fold aggregate bandwidth); each
    /// channel runs its own saturation watcher, MUX coin and pull shard,
    /// always in ascending channel order so the `MUX` stream's draw
    /// sequence is a deterministic function of the shard backlogs.
    fn multi_slot(&mut self, now: Time, sched: &mut Scheduler<Event>) {
        // bpp-lint: allow(D3): dispatch guard — Event::Slot routes here only when multi is Some
        let num = self.multi.as_ref().expect("caller checked").shards.len();
        // Peak depth is the worst single shard: capacity is per shard, so
        // the ledger's depth-vs-capacity comparison stays meaningful.
        {
            // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
            let m = self.multi.as_ref().expect("multi mode");
            for s in &m.shards {
                let depth = s.queue.len() as u64;
                if depth > self.peak_queue_depth {
                    self.peak_queue_depth = depth;
                }
            }
        }
        if self.crash.is_some() {
            self.crash_edges(now);
        }
        if self.obs.is_some() {
            // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
            let m = self.multi.as_ref().expect("multi mode");
            let depths: Vec<usize> = m.shards.iter().map(|s| s.queue.len()).collect();
            let total: usize = depths.iter().sum();
            let brownouts: Vec<f64> = match &self.fault {
                Some(f) => m
                    .brownout_shifts
                    .iter()
                    .map(|&shift| f64::from(f.in_brownout(now + shift)))
                    .collect(),
                None => Vec::new(),
            };
            let fleet_hit_rate = self.fleet.as_ref().map(|f| f.stats().hit_rate());
            let mc_hit_rate = self.mc.stats().hit_rate();
            let crash_state = self.crash.as_ref().map(|c| {
                if c.down {
                    1.0
                } else if c.recovering {
                    2.0
                } else {
                    0.0
                }
            });
            if let Some(obs) = self.obs.as_mut() {
                obs.on_slot(now, total);
                obs.on_slot_channel_depths(now, &depths);
                obs.on_slot_channel_share(now);
                if !brownouts.is_empty() {
                    obs.on_slot_channel_fault(now, &brownouts);
                }
                if let Some(hr) = fleet_hit_rate {
                    obs.on_slot_fleet(now, hr);
                }
                obs.on_slot_mc_hit_rate(now, mc_hit_rate);
                if let Some(state) = crash_state {
                    obs.on_slot_fault_state(now, state);
                }
            }
        }
        // A dead server broadcasts nothing on any channel and serves no
        // pulls; client-side processes keep running against it.
        let down = match &mut self.crash {
            Some(c) if c.down => {
                c.down_slots += 1;
                true
            }
            _ => false,
        };
        if down {
            self.drain_vc(now + 1.0);
            if let Some(up) = &mut self.updates {
                up.drain(now + 1.0, &mut self.mc);
            }
            sched.schedule_at(now + 1.0, Event::Slot);
            return;
        }
        if let Some(c) = &mut self.crash {
            if c.recovering {
                let herd: u64 = self
                    .multi
                    .as_ref()
                    // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
                    .expect("multi mode")
                    .shards
                    .iter()
                    .map(|s| s.queue.pending_requests())
                    .sum();
                if herd > c.herd_peak_depth {
                    c.herd_peak_depth = herd;
                }
            }
        }
        // Per-shard saturation: each channel sheds its own pull bandwidth.
        for k in 0..num {
            // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
            let m = self.multi.as_mut().expect("multi mode");
            let shard = &mut m.shards[k];
            if let Some(sat) = &mut shard.saturation {
                let was_saturated = sat.is_saturated();
                let mult = sat.observe(shard.queue.len(), shard.queue.capacity());
                shard.mux.set_pull_bw(self.base_pull_bw * mult);
                let flipped = sat.is_saturated() != was_saturated;
                let on = sat.is_saturated();
                let occupancy = sat.occupancy();
                if flipped {
                    if let Some(obs) = &mut self.obs {
                        let label = if on {
                            "saturation_on"
                        } else {
                            "saturation_off"
                        };
                        obs.trace(now, label, occupancy);
                    }
                }
            }
        }
        // Decide and transmit one slot per channel.
        let mut transmitted: Vec<Option<PageId>> = Vec::with_capacity(num);
        for k in 0..num {
            // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
            let m = self.multi.as_mut().expect("multi mode");
            let decision = {
                let shard = &mut m.shards[k];
                shard.mux.decide(shard.queue.is_empty(), &mut self.rng_mux)
            };
            let page = match decision {
                SlotDecision::ServePull => {
                    let (p, wait) = m.shards[k]
                        .queue
                        .pop_wait(now)
                        // bpp-lint: allow(D3): the MUX decides ServePull only when queue_empty is false
                        .expect("MUX only pulls when non-empty");
                    self.slots.pull_pages += 1;
                    if let (Some(obs), Some(w)) = (&mut self.obs, wait) {
                        obs.record_pull_wait(w);
                    }
                    Some(p)
                }
                SlotDecision::ContinuePush => {
                    let cycle = m.channels.channel(k).major_cycle();
                    if cycle == 0 {
                        self.slots.idle += 1;
                        None
                    } else {
                        let s = m.channels.channel(k).slot(m.cursors[k]);
                        m.cursors[k] = (m.cursors[k] + 1) % cycle;
                        if let Some(obs) = &mut self.obs {
                            // Padding too: it is bandwidth charged to the
                            // channel whose chunking produced it.
                            obs.on_push_slot_channel(k);
                        }
                        match s {
                            Slot::Page(p) => {
                                self.slots.push_pages += 1;
                                Some(p)
                            }
                            Slot::Empty => {
                                self.slots.empty += 1;
                                None
                            }
                        }
                    }
                }
            };
            transmitted.push(page);
        }
        // Deliver: a single-tuner client hears exactly one channel. The
        // generator puts every page on one channel (and requests shard the
        // same way), so a page's waiters are always tuned where it flies;
        // the tuned gate below matters for opportunistic prefetch only.
        for (k, page) in transmitted.into_iter().enumerate() {
            let Some(p) = page else { continue };
            // A lost slot still burns the bandwidth: the page was
            // transmitted but no listener heard it.
            let lost = match &mut self.fault {
                Some(f) => f.page_lost(),
                None => false,
            };
            if lost {
                continue;
            }
            // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
            if self.multi.as_ref().expect("multi mode").mc_tuned == k {
                // The page completes transmission at now + 1.
                if let Some(resp) = self.mc.on_broadcast(now + 1.0, p) {
                    self.complete_mc_access(now + 1.0, resp);
                    let think = self.mc.draw_think(&mut self.rng_mc);
                    sched.schedule_at(now + 1.0 + think, Event::McWake);
                } else if self.prefetch {
                    self.mc.prefetch(now + 1.0, p);
                }
            }
            if let Some(fleet) = &mut self.fleet {
                for &(client, at) in fleet.deliver(p, now + 1.0, &mut self.rng_fleet) {
                    sched.schedule_at(at, Event::FleetWake { client });
                }
            }
        }
        self.drain_vc(now + 1.0);
        if let Some(up) = &mut self.updates {
            up.drain(now + 1.0, &mut self.mc);
        }
        if self.adaptive.is_some() {
            let agg = self.total_queue_stats();
            let decision = self.adaptive.as_mut().and_then(|ctrl| ctrl.on_slot(&agg));
            if let Some((bw, thres)) = decision {
                self.base_pull_bw = bw;
                // bpp-lint: allow(D3): same Option the dispatch guard just unwrapped
                let m = self.multi.as_mut().expect("multi mode");
                for shard in &mut m.shards {
                    shard.mux.set_pull_bw(bw);
                }
                for k in 0..m.filters.len() {
                    let cycle = m.channels.channel(k).major_cycle();
                    if cycle > 0 {
                        m.filters[k] = ThresholdFilter::from_percentage(thres, cycle);
                    }
                }
            }
        }
        sched.schedule_at(now + 1.0, Event::Slot);
    }
}

fn top_by_prob(pattern: &AccessPattern, k: usize) -> Vec<usize> {
    pattern.top_items(k)
}

impl Model for World {
    type Event = Event;

    fn event_label(event: &Event) -> &'static str {
        match event {
            Event::Slot => "slot",
            Event::McWake => "mc_wake",
            Event::McRetry { .. } => "mc_retry",
            Event::FleetWake { .. } => "fleet_wake",
            Event::FleetRetry { .. } => "fleet_retry",
        }
    }

    fn handle(&mut self, now: Time, event: Event, sched: &mut Scheduler<Event>) {
        // Monotone-time audit: the scheduler contract is non-decreasing
        // dispatch times; count (don't mask) any violation.
        if now < self.last_event_time {
            self.time_regressions += 1;
        } else {
            self.last_event_time = now;
        }
        match event {
            Event::Slot => {
                if now >= self.protocol.max_sim_time {
                    self.done = true;
                    return;
                }
                if self.multi.is_some() {
                    self.multi_slot(now, sched);
                    return;
                }
                let depth = self.queue.len() as u64;
                if depth > self.peak_queue_depth {
                    self.peak_queue_depth = depth;
                }
                if self.crash.is_some() {
                    self.crash_edges(now);
                }
                if let Some(obs) = &mut self.obs {
                    obs.on_slot(now, self.queue.len());
                    if let Some(fleet) = &self.fleet {
                        obs.on_slot_fleet(now, fleet.stats().hit_rate());
                    }
                    obs.on_slot_mc_hit_rate(now, self.mc.stats().hit_rate());
                    obs.on_slot_disk_share(now);
                    if let Some(c) = &self.crash {
                        let state = if c.down {
                            1.0
                        } else if c.recovering {
                            2.0
                        } else {
                            0.0
                        };
                        obs.on_slot_fault_state(now, state);
                    }
                }
                // A dead server broadcasts nothing and serves no pulls; the
                // clients' own processes (VC arrivals, update stream, retry
                // timers already in flight) keep running against it.
                let down = match &mut self.crash {
                    Some(c) if c.down => {
                        c.down_slots += 1;
                        true
                    }
                    _ => false,
                };
                if down {
                    self.drain_vc(now + 1.0);
                    if let Some(up) = &mut self.updates {
                        up.drain(now + 1.0, &mut self.mc);
                    }
                    sched.schedule_at(now + 1.0, Event::Slot);
                    return;
                }
                if let Some(c) = &mut self.crash {
                    if c.recovering {
                        let herd = self.queue.pending_requests();
                        if herd > c.herd_peak_depth {
                            c.herd_peak_depth = herd;
                        }
                    }
                }
                if let Some(sat) = &mut self.saturation {
                    let was_saturated = sat.is_saturated();
                    let mult = sat.observe(self.queue.len(), self.queue.capacity());
                    self.mux.set_pull_bw(self.base_pull_bw * mult);
                    if let Some(obs) = &mut self.obs {
                        if sat.is_saturated() != was_saturated {
                            let label = if sat.is_saturated() {
                                "saturation_on"
                            } else {
                                "saturation_off"
                            };
                            obs.trace(now, label, sat.occupancy());
                        }
                    }
                }
                let decision = self.mux.decide(self.queue.is_empty(), &mut self.rng_mux);
                let page = match decision {
                    SlotDecision::ServePull => {
                        let (p, wait) = self
                            .queue
                            .pop_wait(now)
                            // bpp-lint: allow(D3): the MUX decides ServePull only when queue_empty is false
                            .expect("MUX only pulls when non-empty");
                        if let (Some(obs), Some(w)) = (&mut self.obs, wait) {
                            obs.record_pull_wait(w);
                        }
                        self.slots.pull_pages += 1;
                        Some(p)
                    }
                    SlotDecision::ContinuePush => {
                        if self.program.major_cycle() == 0 {
                            self.slots.idle += 1;
                            None
                        } else {
                            let s = self.program.slot(self.cursor);
                            if let Some(obs) = &mut self.obs {
                                // Padding slots too: they are bandwidth
                                // charged to the disk whose chunking
                                // produced them.
                                obs.on_push_slot_disk(self.program.disk_of_slot(self.cursor));
                            }
                            self.cursor = (self.cursor + 1) % self.program.major_cycle();
                            match s {
                                Slot::Page(p) => {
                                    self.slots.push_pages += 1;
                                    Some(p)
                                }
                                Slot::Empty => {
                                    self.slots.empty += 1;
                                    None
                                }
                            }
                        }
                    }
                };
                if let Some(p) = page {
                    // A lost slot still burns the bandwidth: the page was
                    // transmitted but no listener heard it.
                    let lost = match &mut self.fault {
                        Some(f) => f.page_lost(),
                        None => false,
                    };
                    if !lost {
                        // The page completes transmission at now + 1.
                        if let Some(resp) = self.mc.on_broadcast(now + 1.0, p) {
                            self.complete_mc_access(now + 1.0, resp);
                            let think = self.mc.draw_think(&mut self.rng_mc);
                            sched.schedule_at(now + 1.0 + think, Event::McWake);
                        } else if self.prefetch {
                            self.mc.prefetch(now + 1.0, p);
                        }
                        // Batch-complete every fleet client blocked on this
                        // page in one pass over exactly those waiters.
                        if let Some(fleet) = &mut self.fleet {
                            for &(client, at) in fleet.deliver(p, now + 1.0, &mut self.rng_fleet) {
                                sched.schedule_at(at, Event::FleetWake { client });
                            }
                        }
                    }
                }
                // VC accesses land during this slot; they are eligible for
                // service from the next slot on.
                self.drain_vc(now + 1.0);
                if let Some(up) = &mut self.updates {
                    up.drain(now + 1.0, &mut self.mc);
                }
                if let Some(ctrl) = &mut self.adaptive {
                    if let Some((bw, thres)) = ctrl.on_slot(self.queue.stats()) {
                        self.mux.set_pull_bw(bw);
                        self.base_pull_bw = bw;
                        if self.program.major_cycle() > 0 {
                            let f =
                                ThresholdFilter::from_percentage(thres, self.program.major_cycle());
                            self.mc.set_threshold(f);
                            self.vc_threshold = f;
                        }
                    }
                }
                sched.schedule_at(now + 1.0, Event::Slot);
            }
            Event::McWake => {
                if self.multi.is_some() {
                    self.mc_wake_multi(now, sched);
                    return;
                }
                match self
                    .mc
                    .begin_access(now, &self.program, self.cursor, &mut self.rng_mc)
                {
                    BeginOutcome::Hit { .. } => {
                        self.complete_mc_access(now, 0.0);
                        let think = self.mc.draw_think(&mut self.rng_mc);
                        sched.schedule_in(think, Event::McWake);
                    }
                    BeginOutcome::Miss { page, send_request } => {
                        // Invalidate any retry timer armed for an earlier
                        // access, whether or not this one sends a request.
                        self.retry_gen += 1;
                        if self.has_backchannel && send_request {
                            let outcome = self.submit_request(now, page);
                            if self.retry.enabled() {
                                self.retry_state = RetryState::arm();
                                if let Some(d) = self
                                    .retry_state
                                    .next_delay(&self.retry, &mut self.rng_retry)
                                {
                                    let d = reconnect_delay(
                                        d,
                                        outcome,
                                        self.reconnect_jitter,
                                        &mut self.rng_retry,
                                    );
                                    sched.schedule_at(
                                        now + d,
                                        Event::McRetry {
                                            gen: self.retry_gen,
                                        },
                                    );
                                }
                            }
                        }
                        // The client now blocks; Event::Slot completes it.
                    }
                }
            }
            Event::McRetry { gen } => {
                if gen != self.retry_gen {
                    return; // stale timer from a finished access
                }
                let Some(page) = self.mc.waiting_on() else {
                    return;
                };
                match self
                    .retry_state
                    .next_delay(&self.retry, &mut self.rng_retry)
                {
                    Some(delay) => {
                        self.retries += 1;
                        if let Some(obs) = &mut self.obs {
                            obs.trace(now, "retry_resend", delay);
                        }
                        // Resends go to the shard of the channel the MC
                        // tuned to at the original miss (a page's channel
                        // never changes mid-run).
                        let shard = self.multi.as_ref().map(|m| m.mc_tuned);
                        let outcome = self.submit_request_in(now, page, shard);
                        let delay = reconnect_delay(
                            delay,
                            outcome,
                            self.reconnect_jitter,
                            &mut self.rng_retry,
                        );
                        sched.schedule_at(now + delay, Event::McRetry { gen });
                    }
                    None => {
                        // Retry budget exhausted: fall back to waiting for
                        // the page on the periodic broadcast.
                        self.retries_exhausted += 1;
                        if let Some(obs) = &mut self.obs {
                            obs.trace(now, "retry_exhausted", self.retry_state.attempts() as f64);
                        }
                    }
                }
            }
            Event::FleetWake { client } => {
                let outcome = match (&mut self.fleet, &self.multi) {
                    (Some(fleet), Some(m)) => fleet.wake_tuned(
                        client,
                        now,
                        &m.channels,
                        &m.cursors,
                        &m.filters,
                        &mut self.rng_fleet,
                    ),
                    (Some(fleet), None) => {
                        fleet.wake(client, now, &self.program, self.cursor, &mut self.rng_fleet)
                    }
                    (None, _) => return,
                };
                match outcome {
                    WakeOutcome::Hit { next_wake } => {
                        sched.schedule_at(next_wake, Event::FleetWake { client });
                    }
                    WakeOutcome::Miss { page, send_request } => {
                        if send_request {
                            // Fleet requests ride the same lossy
                            // backchannel as the MC's and VC's, sharded by
                            // the client's tuned channel in K-channel mode.
                            let shard = self.fleet_shard(client, page);
                            let outcome = self.submit_request_in(now, page, shard);
                            if self.retry.enabled() {
                                let armed = match &mut self.fleet {
                                    Some(fleet) => {
                                        let gen = fleet.arm_retry(client);
                                        fleet
                                            .next_retry_delay(
                                                client,
                                                &self.retry,
                                                &mut self.rng_fleet,
                                            )
                                            .map(|d| (gen, d))
                                    }
                                    None => None,
                                };
                                if let Some((gen, d)) = armed {
                                    let d = reconnect_delay(
                                        d,
                                        outcome,
                                        self.reconnect_jitter,
                                        &mut self.rng_fleet,
                                    );
                                    sched.schedule_at(now + d, Event::FleetRetry { client, gen });
                                }
                            }
                        }
                        // The client now blocks; a delivered slot carrying
                        // the page completes it.
                    }
                }
            }
            Event::FleetRetry { client, gen } => {
                let resend = match &mut self.fleet {
                    Some(fleet) => {
                        if fleet.retry_gen(client) != gen {
                            return; // stale timer from a completed access
                        }
                        let Some(page) = fleet.waiting_on(client) else {
                            return;
                        };
                        match fleet.next_retry_delay(client, &self.retry, &mut self.rng_fleet) {
                            Some(delay) => {
                                fleet.note_retry();
                                Some((page, delay))
                            }
                            None => {
                                // Budget spent: the push schedule is the
                                // reliability floor, same as for the MC.
                                fleet.note_retry_exhausted();
                                None
                            }
                        }
                    }
                    None => return,
                };
                if let Some((page, delay)) = resend {
                    let shard = self.fleet_shard(client, page);
                    let outcome = self.submit_request_in(now, page, shard);
                    let delay =
                        reconnect_delay(delay, outcome, self.reconnect_jitter, &mut self.rng_fleet);
                    sched.schedule_at(now + delay, Event::FleetRetry { client, gen });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `bpp-client` cannot depend on this crate, so it mirrors its one
    /// registry entry; the mirror must track the canonical id forever.
    #[test]
    fn client_retry_stream_mirror_matches() {
        assert_eq!(bpp_client::streams::RETRY, streams::RETRY);
    }

    fn quick_cfg(algorithm: Algorithm) -> SystemConfig {
        let mut c = SystemConfig::small();
        c.algorithm = algorithm;
        c
    }

    fn run(cfg: &SystemConfig) -> Engine<World> {
        let proto = MeasurementProtocol::quick();
        let mut engine = World::steady_state(cfg, &proto).into_engine();
        engine.run_while(|w| !w.done());
        engine
    }

    #[test]
    fn pure_push_reaches_measurement_and_converges() {
        let engine = run(&quick_cfg(Algorithm::PurePush));
        let w = engine.model();
        assert_eq!(w.phase(), Phase::Measure);
        assert!(w.responses().count() > 0);
        assert!(w.responses().mean() > 0.0);
        // No backchannel: no pull slots, no queue traffic.
        assert_eq!(w.slots().pull_pages, 0);
        assert_eq!(w.queue().stats().received, 0);
    }

    #[test]
    fn pure_pull_serves_everything_from_the_queue() {
        let engine = run(&quick_cfg(Algorithm::PurePull));
        let w = engine.model();
        assert_eq!(w.slots().push_pages, 0);
        assert_eq!(w.slots().empty, 0);
        assert!(w.slots().pull_pages > 0);
        assert!(w.queue().stats().received > 0);
        assert!(w.responses().mean() > 0.0);
    }

    #[test]
    fn ipp_mixes_push_and_pull() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.pull_bw = 0.5;
        let engine = run(&cfg);
        let w = engine.model();
        assert!(w.slots().push_pages > 0, "IPP must push");
        assert!(w.slots().pull_pages > 0, "IPP must pull");
        // PullBW bounds the pull share (with slack for the bounded run).
        assert!(
            w.slots().pull_fraction() <= 0.55,
            "{}",
            w.slots().pull_fraction()
        );
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let cfg = quick_cfg(Algorithm::Ipp);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.model().responses().mean(), b.model().responses().mean());
        assert_eq!(a.model().slots(), b.model().slots());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.dispatched(), b.dispatched());
    }

    #[test]
    fn obs_layer_does_not_perturb_the_simulation() {
        // The golden-safety invariant: enabling observability changes no
        // simulated outcome — same responses, same slots, same event count.
        let base = quick_cfg(Algorithm::Ipp);
        let mut with_obs = base.clone();
        with_obs.obs.enabled = true;
        let a = run(&base);
        let b = run(&with_obs);
        assert_eq!(a.model().responses().mean(), b.model().responses().mean());
        assert_eq!(a.model().slots(), b.model().slots());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.dispatched(), b.dispatched());
        assert!(a.obs().is_none());
        assert!(b.obs().is_some());
    }

    #[test]
    fn disk_share_timelines_cover_every_disk_and_sum_to_one() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.obs.enabled = true;
        cfg.obs.disk_share = true;
        let engine = run(&cfg);
        let report = engine
            .model()
            .obs_report(engine.obs(), engine.now())
            .expect("obs enabled");
        let shares: Vec<f64> = (0..cfg.rel_freqs.len())
            .map(|k| {
                let key = format!("broadcast.disk{k}.share");
                let (_, tl) = report
                    .timelines
                    .iter()
                    .find(|(name, _)| *name == key)
                    .expect("per-disk timeline present");
                let (_, mean, _) = *tl.points().last().expect("disk was sampled");
                mean
            })
            .collect();
        // All disks sample at the same instants, so the per-bucket means
        // of the cumulative shares still partition the broadcast: sum 1.
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares {shares:?}");
        // The fast disk outspins the slow one in slot share as well.
        assert!(shares[0] > 0.0 && shares.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn disk_share_knob_off_emits_no_timeline() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.obs.enabled = true;
        let engine = run(&cfg);
        let report = engine
            .model()
            .obs_report(engine.obs(), engine.now())
            .expect("obs enabled");
        assert!(report
            .timelines
            .iter()
            .all(|(name, _)| !name.starts_with("broadcast.disk")));
    }

    #[test]
    fn obs_report_is_bit_reproducible() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.obs.enabled = true;
        let render = || {
            let engine = run(&cfg);
            let report = engine
                .model()
                .obs_report(engine.obs(), engine.now())
                .expect("obs enabled");
            bpp_json::to_string(&report)
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn obs_report_is_consistent_with_the_run() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.pull_bw = 0.5;
        cfg.obs.enabled = true;
        let engine = run(&cfg);
        let w = engine.model();
        let report = w
            .obs_report(engine.obs(), engine.now())
            .expect("obs enabled");
        let m = &report.metrics;
        // Engine dispatch counters agree with the world's slot accounting
        // (the final Slot dispatch may stop at max_sim_time unaccounted).
        assert!(m.counter("engine.dispatch.slot") >= w.slots().total());
        assert!(m.counter("engine.dispatch.mc_wake") > 0);
        assert_eq!(m.counter("server.slots.pull"), w.slots().pull_pages);
        assert_eq!(m.counter("server.queue.served"), w.queue().stats().served);
        // Every served pull has a tracked wait, and waits are plausible.
        assert_eq!(
            m.counter("server.pull_wait.count"),
            w.queue().stats().served
        );
        assert!(m.gauge_value("server.pull_wait.mean").unwrap() >= 0.0);
        // MC counters mirror McStats; every miss either sent or filtered.
        let mc = w.mc().stats();
        assert_eq!(m.counter("client.mc.misses"), mc.misses);
        assert_eq!(
            m.counter("client.mc.requests_sent") + m.counter("client.mc.requests_filtered"),
            mc.misses
        );
        // The queue-depth timeline was sealed at the end of the run.
        let depth = report
            .timelines
            .iter()
            .find(|(name, _)| name == "server.queue_depth")
            .expect("queue depth timeline present");
        assert!(!depth.1.points().is_empty());
    }

    #[test]
    fn obs_traces_retries_under_faults() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.fault = crate::config::FaultConfig::lossy(0.3);
        cfg.obs.enabled = true;
        let engine = run(&cfg);
        let w = engine.model();
        let report = w
            .obs_report(engine.obs(), engine.now())
            .expect("obs enabled");
        assert_eq!(report.metrics.counter("client.mc.retries"), {
            // bpp-lint: allow(D3): fault_report is Some because the fault model is enabled
            w.fault_report().expect("faults on").retries
        });
        // Heavy request loss forces resends; each leaves a trace event
        // (unless the small ring already evicted them all, which a
        // quick-protocol run never does at capacity 256).
        if report.metrics.counter("client.mc.retries") > 0 {
            assert!(
                report.trace.entries().any(|e| e.label == "retry_resend")
                    || report.trace.dropped() > 0
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = quick_cfg(Algorithm::Ipp);
        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 0xDEAD;
        let a = run(&cfg);
        let b = run(&cfg2);
        assert_ne!(a.model().responses().mean(), b.model().responses().mean());
    }

    #[test]
    fn warmup_experiment_times_all_milestones() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.pull_bw = 0.5;
        let proto = MeasurementProtocol::quick();
        let mut engine = World::warmup_experiment(&cfg, &proto).into_engine();
        engine.run_while(|w| !w.done());
        let w = engine.model();
        let tracker = w.mc().warmup().expect("tracker attached");
        assert!(tracker.complete(), "progress {}", tracker.progress());
        // Milestones are non-decreasing in time.
        let times: Vec<f64> = tracker.milestones().iter().map(|t| t.unwrap()).collect();
        for pair in times.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn updates_invalidate_and_degrade_gracefully() {
        // [Acha96b]: moderate update rates approach read-only performance;
        // higher rates cost more. Invalidations must actually happen.
        let proto = MeasurementProtocol::quick();
        let run_at = |rate: f64| {
            let mut cfg = quick_cfg(Algorithm::PurePush);
            cfg.update_rate = rate;
            let mut engine = World::steady_state(&cfg, &proto).into_engine();
            engine.run_while(|w| !w.done());
            let (updates, invals) = engine.model().update_stats();
            (engine.model().responses().mean(), updates, invals)
        };
        let (read_only, u0, _) = run_at(0.0);
        assert_eq!(u0, 0);
        let (moderate, u1, inv1) = run_at(0.05);
        assert!(u1 > 0 && inv1 > 0, "updates {u1}, invalidations {inv1}");
        let (heavy, u2, _) = run_at(1.0);
        assert!(u2 > u1);
        assert!(
            moderate < heavy,
            "moderate {moderate} should beat heavy churn {heavy}"
        );
        assert!(
            read_only <= moderate,
            "read-only {read_only} is the floor, moderate {moderate}"
        );
    }

    #[test]
    fn uniform_updates_hit_cold_pages_too() {
        let proto = MeasurementProtocol::quick();
        let mut cfg = quick_cfg(Algorithm::PurePush);
        cfg.update_rate = 0.5;
        cfg.update_access_correlation = 0.0;
        let mut engine = World::steady_state(&cfg, &proto).into_engine();
        engine.run_while(|w| !w.done());
        let (updates, invals) = engine.model().update_stats();
        assert!(updates > 0);
        // Uniform updates mostly miss the (hot) cache: invalidation share
        // roughly tracks cache_size/db_size.
        let share = invals as f64 / updates as f64;
        assert!(share < 0.35, "invalidation share {share}");
    }

    #[test]
    fn prefetch_accelerates_warmup_under_pure_push() {
        // [Acha96a]: opportunistic prefetching beats demand-driven caching.
        let proto = MeasurementProtocol::quick();
        let mut cfg = quick_cfg(Algorithm::PurePush);
        let t95 = |cfg: &SystemConfig| {
            let mut engine = World::warmup_experiment(cfg, &proto).into_engine();
            engine.run_while(|w| !w.done());
            engine
                .model()
                .mc()
                .warmup()
                .unwrap()
                .milestones()
                .last()
                .copied()
                .flatten()
                .expect("reached 95%")
        };
        let demand = t95(&cfg);
        cfg.mc_prefetch = true;
        let prefetch = t95(&cfg);
        assert!(
            prefetch < demand / 2.0,
            "prefetch {prefetch} vs demand {demand}"
        );
    }

    #[test]
    fn prefetch_never_hurts_steady_state_response() {
        let proto = MeasurementProtocol::quick();
        let base = quick_cfg(Algorithm::PurePush);
        let mut pf = base.clone();
        pf.mc_prefetch = true;
        let mut e1 = World::steady_state(&base, &proto).into_engine();
        e1.run_while(|w| !w.done());
        let mut e2 = World::steady_state(&pf, &proto).into_engine();
        e2.run_while(|w| !w.done());
        // With static scores the steady-state cache content is identical;
        // prefetching only reaches it sooner. Allow statistical slack.
        let demand = e1.model().responses().mean();
        let prefetch = e2.model().responses().mean();
        assert!(
            prefetch <= demand * 1.15,
            "prefetch {prefetch} vs demand {demand}"
        );
    }

    #[test]
    fn pull_bw_zero_ipp_behaves_like_push_for_slots() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.pull_bw = 0.0;
        let engine = run(&cfg);
        let w = engine.model();
        assert_eq!(w.slots().pull_pages, 0);
        // Requests still arrive (backchannel exists) but are never served.
        assert!(w.queue().stats().received > 0);
    }

    #[test]
    fn chopped_world_still_converges_with_enough_pull_bw() {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.chop = 50; // half of the small database off the broadcast
        cfg.pull_bw = 0.5;
        let engine = run(&cfg);
        let w = engine.model();
        assert_eq!(w.phase(), Phase::Measure);
        assert!(w.program().distinct_pages() == 50);
    }

    #[test]
    fn measured_queue_stats_exclude_warmup_traffic() {
        let cfg = quick_cfg(Algorithm::PurePull);
        let engine = run(&cfg);
        let w = engine.model();
        let measured = w.measured_queue_stats();
        let total = w.queue().stats();
        assert!(measured.received < total.received);
    }

    fn fleet_cfg(n: usize) -> SystemConfig {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.pull_bw = 0.5;
        cfg.population = crate::config::ClientPopulation::fleet(n);
        cfg
    }

    #[test]
    fn fleet_population_replaces_the_virtual_client() {
        let engine = run(&fleet_cfg(64));
        let w = engine.model();
        assert!(w.vc.is_none(), "fleet must replace the VC");
        let fleet = w.fleet().expect("fleet configured");
        assert_eq!(fleet.len(), 64);
        let fs = fleet.stats();
        assert!(fs.accesses > 0, "fleet never woke");
        assert!(fs.completed > 0, "no fleet miss ever completed");
        assert!(fs.hits > 0, "warmed fleet never hit");
        assert!(fs.requests_sent > 0, "fleet never used the backchannel");
        // Flow times were recorded and are plausible (≥ 1 slot each).
        assert_eq!(fleet.flow().count(), fs.completed);
        assert!(fleet.flow().max() >= 1.0);
        // The MC still converges with real clients generating the load.
        assert_eq!(w.phase(), Phase::Measure);
        assert!(w.responses().mean() > 0.0);
    }

    #[test]
    fn fleet_run_is_bit_reproducible() {
        let cfg = fleet_cfg(50);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.model().responses().mean(), b.model().responses().mean());
        assert_eq!(
            a.model().fleet().unwrap().stats(),
            b.model().fleet().unwrap().stats()
        );
        assert_eq!(a.now(), b.now());
        assert_eq!(a.dispatched(), b.dispatched());
    }

    #[test]
    fn aggregate_population_is_untouched_by_the_fleet_code() {
        // The golden-safety invariant of this extension: a default
        // (aggregate) config runs the exact pre-fleet instruction stream.
        let cfg = quick_cfg(Algorithm::Ipp);
        assert!(!cfg.population.is_fleet());
        let engine = run(&cfg);
        let w = engine.model();
        assert!(w.fleet().is_none());
        assert!(w.vc.is_some());
    }

    #[test]
    fn fleet_load_converges_to_the_virtual_client_aggregate() {
        // A fleet of n clients thinking n×(MC_Think/TTR) on average offers
        // the same aggregate request rate as the open-loop VC; the server
        // must see comparable backchannel load either way.
        let proto = MeasurementProtocol::quick();
        let agg = quick_cfg(Algorithm::Ipp);
        let mut e1 = World::steady_state(&agg, &proto).into_engine();
        e1.run_until(4_000.0);
        let mut e2 = World::steady_state(&fleet_cfg(200), &proto).into_engine();
        e2.run_until(4_000.0);
        let vc_reqs = e1.model().queue().stats().received as f64;
        let fleet_reqs = e2.model().queue().stats().received as f64;
        assert!(vc_reqs > 0.0 && fleet_reqs > 0.0);
        let ratio = fleet_reqs / vc_reqs;
        // Closed-loop damping and warm-up make the fleet slightly lighter;
        // the rates must still be the same order.
        assert!(
            (0.4..=1.6).contains(&ratio),
            "fleet/VC request ratio {ratio} (fleet {fleet_reqs}, vc {vc_reqs})"
        );
    }

    #[test]
    fn hundred_thousand_client_fleet_completes_a_bounded_run() {
        // The million-client engine's acceptance cell: a 10⁵-client fleet
        // must be buildable and runnable inside a unit-test budget. The
        // run is bounded in simulated time, not by convergence.
        let mut cfg = fleet_cfg(100_000);
        cfg.obs.enabled = true;
        let proto = MeasurementProtocol::quick();
        let mut engine = World::steady_state(&cfg, &proto).into_engine();
        engine.run_until(200.0);
        let w = engine.model();
        let fleet = w.fleet().expect("fleet configured");
        let fs = *fleet.stats();
        assert!(fs.accesses > 0, "fleet never woke");
        assert!(fs.completed > 0, "no fleet completion in 200 units");
        // The obs layer carries the fleet hit-rate timeline and counters.
        let report = w.obs_report(engine.obs(), engine.now()).expect("obs on");
        assert_eq!(report.metrics.counter("client.fleet.clients"), 100_000);
        assert_eq!(report.metrics.counter("client.fleet.accesses"), fs.accesses);
        assert!(report
            .timelines
            .iter()
            .any(|(name, _)| name == "client.fleet.hit_rate"));
    }

    fn k_cfg(k: usize) -> SystemConfig {
        let mut cfg = quick_cfg(Algorithm::Ipp);
        cfg.pull_bw = 0.5;
        cfg.num_channels = k;
        cfg
    }

    #[test]
    fn multi_channel_world_converges_and_splits_the_schedule() {
        let engine = run(&k_cfg(4));
        let w = engine.model();
        assert_eq!(w.num_channels(), 4);
        assert_eq!(w.phase(), Phase::Measure);
        assert!(w.responses().mean() > 0.0);
        assert!(w.slots().push_pages > 0, "K-channel IPP must push");
        assert!(w.slots().pull_pages > 0, "K-channel IPP must pull");
        // Every broadcast unit carries one slot per channel.
        let total = w.slots().total() as f64;
        assert!((total - 4.0 * engine.now()).abs() <= 4.0);
    }

    #[test]
    fn more_channels_cut_response_time_at_fixed_population() {
        // The scaling claim of the extension: K lock-step channels are
        // K-fold bandwidth, so the mean response must drop with K.
        let r1 = run(&k_cfg(1)).model().responses().mean();
        let r4 = run(&k_cfg(4)).model().responses().mean();
        assert!(r4 < r1, "K=4 mean {r4} must beat K=1 mean {r1}");
    }

    #[test]
    fn multi_channel_run_is_bit_reproducible() {
        let cfg = k_cfg(3);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.model().responses().mean(), b.model().responses().mean());
        assert_eq!(a.model().slots(), b.model().slots());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.dispatched(), b.dispatched());
    }

    #[test]
    fn single_channel_config_allocates_no_multi_state() {
        // The golden-safety invariant: `num_channels = 1` builds none of
        // the extension's state and runs the legacy instruction stream.
        let engine = run(&quick_cfg(Algorithm::Ipp));
        assert_eq!(engine.model().num_channels(), 1);
        assert!(engine.model().channels().is_none());
    }

    #[test]
    fn multi_channel_obs_reports_per_channel_timelines() {
        let mut cfg = k_cfg(2);
        cfg.obs.enabled = true;
        let engine = run(&cfg);
        let report = engine
            .model()
            .obs_report(engine.obs(), engine.now())
            .expect("obs enabled");
        let has = |key: String| report.timelines.iter().any(|(n, _)| *n == key);
        for k in 0..2 {
            assert!(has(format!("server.ch{k}.queue_depth")));
            assert!(has(format!("broadcast.ch{k}.share")));
        }
        // No brownouts configured: no per-channel fault timelines.
        assert!(report
            .timelines
            .iter()
            .all(|(n, _)| !n.starts_with("fault.ch")));
        // The channel shares partition the push bandwidth.
        let total: f64 = (0..2)
            .map(|k| {
                let key = format!("broadcast.ch{k}.share");
                let (_, tl) = report
                    .timelines
                    .iter()
                    .find(|(n, _)| *n == key)
                    .expect("present");
                let (_, mean, _) = *tl.points().last().expect("channel was sampled");
                mean
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "channel shares sum {total}");
    }

    #[test]
    fn multi_channel_requests_are_conserved() {
        let mut cfg = k_cfg(4);
        cfg.think_time_ratio = 150.0; // heavy backchannel load
        let engine = run(&cfg);
        let ledger = engine.model().conservation_ledger();
        ledger.assert_clean();
        assert!(ledger.sent > 0);
        assert!(ledger.served > 0);
    }

    #[test]
    fn fleet_clients_retry_lost_requests() {
        let mut cfg = fleet_cfg(64);
        cfg.fault = crate::config::FaultConfig::lossy(0.4);
        let proto = MeasurementProtocol::quick();
        let mut engine = World::steady_state(&cfg, &proto).into_engine();
        engine.run_until(3_000.0);
        let fs = *engine.model().fleet().expect("fleet configured").stats();
        assert!(
            fs.retries > 0,
            "40% request loss must force fleet resends ({fs:?})"
        );
    }
}
