//! Run protocols and result types.

use crate::config::{MeasurementProtocol, SystemConfig};
use crate::fault::FaultReport;
use crate::simulation::{Phase, SlotAccounting, World};
use bpp_json::{Json, ToJson};
use bpp_obs::{EngineObs, ObsReport};
use bpp_sim::Confidence;

/// Result of a steady-state run (the metric of Figures 3, 5, 6, 7, 8).
#[derive(Debug, Clone)]
pub struct SteadyStateResult {
    /// Mean MC response time in broadcast units (cache hits count as 0,
    /// exactly as in the paper's "average response time of requests").
    pub mean_response: f64,
    /// 95% confidence half-width from batch means.
    pub ci_half_width: f64,
    /// MC accesses measured.
    pub measured_accesses: u64,
    /// True when the batch-means stopping rule fired (vs. hitting a cap).
    pub converged: bool,
    /// MC cache hit rate over the whole run.
    pub mc_hit_rate: f64,
    /// Server drop rate (full-queue discards / received) in the
    /// measurement window.
    pub drop_rate: f64,
    /// Server ignore rate (drops + coalesced duplicates, the paper's wider
    /// accounting) in the measurement window.
    pub ignore_rate: f64,
    /// Requests received by the server in the measurement window.
    pub requests_received: u64,
    /// Median measured response (`None` when it fell past the histogram).
    pub p50_response: Option<f64>,
    /// 90th percentile response.
    pub p90_response: Option<f64>,
    /// 99th percentile response.
    pub p99_response: Option<f64>,
    /// Worst measured response — under Pure-Push this is bounded by the
    /// major cycle (the "safety net"); under Pure-Pull it is not.
    pub max_response: f64,
    /// Slot accounting over the whole run.
    pub slots: SlotKinds,
    /// Total simulated time in broadcast units.
    pub sim_time: f64,
    /// What the fault model did to this run; `None` when fault injection is
    /// disabled, keeping the serialized result identical to pre-fault
    /// output.
    pub fault: Option<FaultReport>,
    /// What the observability layer collected; `None` when it is disabled
    /// (the default), keeping the serialized result identical to pre-obs
    /// output.
    pub obs: Option<ObsReport>,
    /// What the arena client fleet experienced; `None` under the aggregate
    /// population (the default), keeping the serialized result identical
    /// to pre-fleet output.
    pub fleet: Option<FleetResult>,
    /// Structured failure record when this cell of a sweep crashed instead
    /// of running to completion (see [`crate::experiments::par_run`]);
    /// `None` for a run that finished normally.
    pub error: Option<RunError>,
}

/// What a crashed sweep cell leaves behind: the panic message plus enough
/// context (seed and full config snapshot) to re-run that exact cell in
/// isolation. Serialized under the result's `"error"` key; never parsed
/// back (failed cells are re-run from the embedded config, not
/// deserialized).
#[derive(Debug, Clone)]
pub struct RunError {
    /// The panic message.
    pub message: String,
    /// The seed the cell ran with (also inside `config`; hoisted so log
    /// scrapers need not parse the snapshot).
    pub seed: u64,
    /// Full configuration snapshot of the failed cell.
    pub config: SystemConfig,
}

impl ToJson for RunError {
    fn to_json(&self) -> Json {
        Json::object([
            ("message", self.message.to_json()),
            ("seed", self.seed.to_json()),
            ("config", self.config.to_json()),
        ])
    }
}

/// Per-fleet metrics of a steady-state run under a fleet population
/// (million-client extension). Flow time is access start → delivery of a
/// completed miss; pages are unit-size, so a request's stretch equals its
/// flow time and `max_stretch` is the fleet's worst flow.
#[derive(Debug, Clone, Copy)]
pub struct FleetResult {
    /// Clients in the arena.
    pub clients: u64,
    /// Accesses begun across the fleet.
    pub accesses: u64,
    /// Fleet-wide cache hit rate.
    pub hit_rate: f64,
    /// Misses handed to the backchannel.
    pub requests_sent: u64,
    /// Misses the threshold filter swallowed.
    pub requests_filtered: u64,
    /// Misses completed by a delivered page.
    pub completed: u64,
    /// Mean flow time of completed misses.
    pub mean_flow: f64,
    /// Median flow time (`None` when it fell past the histogram).
    pub p50_flow: Option<f64>,
    /// 90th percentile flow time.
    pub p90_flow: Option<f64>,
    /// 99th percentile flow time.
    pub p99_flow: Option<f64>,
    /// Worst flow time — equals the fleet's max stretch for unit pages.
    pub max_stretch: f64,
    /// Retry resends issued by fleet clients (fault model).
    pub retries: u64,
}

impl ToJson for FleetResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("clients", self.clients.to_json()),
            ("accesses", self.accesses.to_json()),
            ("hit_rate", self.hit_rate.to_json()),
            ("requests_sent", self.requests_sent.to_json()),
            ("requests_filtered", self.requests_filtered.to_json()),
            ("completed", self.completed.to_json()),
            ("mean_flow", self.mean_flow.to_json()),
            ("p50_flow", self.p50_flow.to_json()),
            ("p90_flow", self.p90_flow.to_json()),
            ("p99_flow", self.p99_flow.to_json()),
            ("max_stretch", self.max_stretch.to_json()),
            ("retries", self.retries.to_json()),
        ])
    }
}

impl SteadyStateResult {
    /// A placeholder result for a sweep cell that panicked: every metric is
    /// poisoned (NaN / zero) and `error` carries the panic message together
    /// with the failed cell's seed and config snapshot.
    pub fn failed(msg: String, cfg: &SystemConfig) -> Self {
        SteadyStateResult {
            mean_response: f64::NAN,
            ci_half_width: f64::NAN,
            measured_accesses: 0,
            converged: false,
            mc_hit_rate: f64::NAN,
            drop_rate: f64::NAN,
            ignore_rate: f64::NAN,
            requests_received: 0,
            p50_response: None,
            p90_response: None,
            p99_response: None,
            max_response: f64::NAN,
            slots: SlotKinds {
                push_pages: 0,
                pull_pages: 0,
                empty: 0,
                idle: 0,
            },
            sim_time: 0.0,
            fault: None,
            obs: None,
            fleet: None,
            error: Some(RunError {
                message: msg,
                seed: cfg.seed,
                config: cfg.clone(),
            }),
        }
    }
}

/// Serializable mirror of [`SlotAccounting`].
#[derive(Debug, Clone, Copy)]
pub struct SlotKinds {
    /// Push slots carrying a page.
    pub push_pages: u64,
    /// Pull slots.
    pub pull_pages: u64,
    /// Padding slots.
    pub empty: u64,
    /// Idle slots.
    pub idle: u64,
}

impl From<SlotAccounting> for SlotKinds {
    fn from(s: SlotAccounting) -> Self {
        SlotKinds {
            push_pages: s.push_pages,
            pull_pages: s.pull_pages,
            empty: s.empty,
            idle: s.idle,
        }
    }
}

impl ToJson for SlotKinds {
    fn to_json(&self) -> Json {
        Json::object([
            ("push_pages", self.push_pages.to_json()),
            ("pull_pages", self.pull_pages.to_json()),
            ("empty", self.empty.to_json()),
            ("idle", self.idle.to_json()),
        ])
    }
}

impl ToJson for SteadyStateResult {
    fn to_json(&self) -> Json {
        let mut obj = Json::object([
            ("mean_response", self.mean_response.to_json()),
            ("ci_half_width", self.ci_half_width.to_json()),
            ("measured_accesses", self.measured_accesses.to_json()),
            ("converged", self.converged.to_json()),
            ("mc_hit_rate", self.mc_hit_rate.to_json()),
            ("drop_rate", self.drop_rate.to_json()),
            ("ignore_rate", self.ignore_rate.to_json()),
            ("requests_received", self.requests_received.to_json()),
            ("p50_response", self.p50_response.to_json()),
            ("p90_response", self.p90_response.to_json()),
            ("p99_response", self.p99_response.to_json()),
            ("max_response", self.max_response.to_json()),
            ("slots", self.slots.to_json()),
            ("sim_time", self.sim_time.to_json()),
        ]);
        // "fault" and "error" appear only when present so fault-free runs
        // serialize exactly as they did before the fault subsystem existed.
        if let Json::Obj(members) = &mut obj {
            if let Some(fault) = &self.fault {
                members.push(("fault".to_string(), fault.to_json()));
            }
            if let Some(obs) = &self.obs {
                members.push(("obs".to_string(), obs.to_json()));
            }
            if let Some(fleet) = &self.fleet {
                members.push(("fleet".to_string(), fleet.to_json()));
            }
            if let Some(error) = &self.error {
                members.push(("error".to_string(), error.to_json()));
            }
        }
        obj
    }
}

/// Result of a warm-up (Figure 4) run.
#[derive(Debug, Clone)]
pub struct WarmupResult {
    /// Milestone fractions (10%, ..., 95% of the ideal cache content).
    pub fractions: Vec<f64>,
    /// First time each fraction was reached, in broadcast units.
    /// `None` = not reached before the simulation-time cap.
    pub times: Vec<Option<f64>>,
    /// Total simulated time.
    pub sim_time: f64,
}

impl ToJson for WarmupResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("fractions", self.fractions.to_json()),
            ("times", self.times.to_json()),
            ("sim_time", self.sim_time.to_json()),
        ])
    }
}

/// Assemble a [`SteadyStateResult`] from a finished world. `converged` is
/// computed by the caller because the plain and adaptive protocols use
/// different stopping-rule interpretations.
pub(crate) fn collect_steady_state(
    w: &World,
    engine_obs: Option<&EngineObs>,
    sim_time: f64,
    converged: bool,
) -> SteadyStateResult {
    let q = w.measured_queue_stats();
    let bm = w.responses();
    SteadyStateResult {
        mean_response: bm.mean(),
        ci_half_width: if bm.completed_batches() >= 2 {
            bm.half_width(Confidence::P95)
        } else {
            f64::INFINITY
        },
        measured_accesses: bm.count(),
        converged,
        mc_hit_rate: w.mc().cache().stats().hit_rate(),
        drop_rate: q.drop_rate(),
        ignore_rate: q.ignore_rate(),
        requests_received: q.received,
        p50_response: w.response_dist().quantile(0.5),
        p90_response: w.response_dist().quantile(0.9),
        p99_response: w.response_dist().quantile(0.99),
        max_response: if w.response_spread().count() > 0 {
            w.response_spread().max()
        } else {
            0.0
        },
        slots: (*w.slots()).into(),
        sim_time,
        fault: w.fault_report(),
        obs: w.obs_report(engine_obs, sim_time),
        fleet: w.fleet().map(|fleet| {
            let fs = fleet.stats();
            FleetResult {
                clients: fleet.len() as u64,
                accesses: fs.accesses,
                hit_rate: fs.hit_rate(),
                requests_sent: fs.requests_sent,
                requests_filtered: fs.requests_filtered,
                completed: fs.completed,
                mean_flow: fleet.flow().mean(),
                p50_flow: fleet.flow_dist().quantile(0.5),
                p90_flow: fleet.flow_dist().quantile(0.9),
                p99_flow: fleet.flow_dist().quantile(0.99),
                max_stretch: if fleet.flow().count() > 0 {
                    fleet.flow().max()
                } else {
                    0.0
                },
                retries: fs.retries,
            }
        }),
        error: None,
    }
}

/// Run the steady-state protocol: fill the MC cache, skip the configured
/// number of accesses, measure until the response-time estimate stabilises
/// (or a cap is hit).
pub fn run_steady_state(cfg: &SystemConfig, protocol: &MeasurementProtocol) -> SteadyStateResult {
    let mut engine = World::steady_state(cfg, protocol).into_engine();
    engine.run_while(|w| !w.done());
    let w = engine.model();
    let bm = w.responses();
    let converged = w.phase() == Phase::Measure
        && bm.count() < protocol.max_accesses
        && bm.converged(
            Confidence::P95,
            protocol.rel_precision,
            protocol.min_batches,
        );
    collect_steady_state(w, engine.obs(), engine.now(), converged)
}

/// Run the warm-up protocol of Figure 4: a cold MC joins the broadcast and
/// we time how fast its cache acquires the `CacheSize` highest-valued pages.
pub fn run_warmup(cfg: &SystemConfig, protocol: &MeasurementProtocol) -> WarmupResult {
    let mut engine = World::warmup_experiment(cfg, protocol).into_engine();
    engine.run_while(|w| !w.done());
    let w = engine.model();
    // bpp-lint: allow(D3): run_warmup builds the world in warmup mode, which always attaches a tracker
    let tracker = w.mc().warmup().expect("warmup world has a tracker");
    WarmupResult {
        fractions: tracker.fractions().to_vec(),
        times: tracker.milestones().to_vec(),
        sim_time: engine.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;

    #[test]
    fn steady_state_result_is_populated() {
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::Ipp;
        let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
        assert!(r.mean_response > 0.0);
        assert!(r.measured_accesses > 0);
        assert!(r.mc_hit_rate > 0.0);
        assert!(r.sim_time > 0.0);
        assert!(r.slots.push_pages > 0);
    }

    #[test]
    fn warmup_result_has_all_milestones() {
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::PurePush;
        let r = run_warmup(&cfg, &MeasurementProtocol::quick());
        assert_eq!(r.fractions.len(), 10);
        assert_eq!(r.times.len(), 10);
        assert!(r.times.iter().all(Option::is_some));
    }

    #[test]
    fn obs_section_appears_only_when_enabled_and_never_shifts_results() {
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::Ipp;
        let off = run_steady_state(&cfg, &MeasurementProtocol::quick());
        assert!(off.obs.is_none());
        assert!(!bpp_json::to_string(&off).contains("\"obs\""));
        cfg.obs.enabled = true;
        let on = run_steady_state(&cfg, &MeasurementProtocol::quick());
        let report = on.obs.as_ref().expect("obs enabled");
        assert!(report.metrics.counter("engine.dispatch.slot") > 0);
        assert!(bpp_json::to_string(&on).contains("\"obs\""));
        // The measured system is untouched by the instrumentation.
        assert_eq!(off.mean_response, on.mean_response);
        assert_eq!(off.sim_time, on.sim_time);
        assert_eq!(off.requests_received, on.requests_received);
    }

    #[test]
    fn pure_push_response_is_independent_of_load() {
        // The paper's flat line: Pure-Push performance does not depend on
        // ThinkTimeRatio.
        let mut a = SystemConfig::small();
        a.algorithm = Algorithm::PurePush;
        a.think_time_ratio = 10.0;
        let mut b = a.clone();
        b.think_time_ratio = 250.0;
        let proto = MeasurementProtocol::quick();
        let ra = run_steady_state(&a, &proto);
        let rb = run_steady_state(&b, &proto);
        assert_eq!(ra.mean_response, rb.mean_response);
    }
}
