//! # bpp-bench — harness utilities shared by the figure binaries
//!
//! Each `fig*` binary regenerates one figure of the paper. Common flags:
//!
//! * `--quick`   loose convergence targets (seconds instead of minutes);
//! * `--full`    the paper-faithful measurement protocol (default);
//! * `--csv`     emit CSV instead of aligned tables;
//! * `--drops`   additionally print the server drop/ignore-rate tables;
//! * `--seed N`  override the root seed;
//! * `--small`   run on the scaled-down test system (100 pages) instead of
//!   the paper's 1000-page configuration.

#![forbid(unsafe_code)]

pub mod micro;

use bpp_core::experiments::Figure;
use bpp_core::report::{fmt_pct, fmt_units, Table};
use bpp_core::{MeasurementProtocol, SystemConfig};

pub use micro::{BenchStats, Group};

/// Parsed command-line options.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Use the quick measurement protocol.
    pub quick: bool,
    /// Emit CSV instead of tables.
    pub csv: bool,
    /// Also print drop/ignore-rate tables.
    pub drops: bool,
    /// Root seed override.
    pub seed: Option<u64>,
    /// Use the scaled-down system.
    pub small: bool,
    /// Use the paper-calibrated Zipf skew (θ = 0.72) instead of the quoted
    /// θ = 0.95; reproduces the paper's absolute response-time levels.
    pub calibrated: bool,
    /// Also render each figure as a terminal chart.
    pub chart: bool,
}

impl Opts {
    /// Parse from `std::env::args`, exiting with usage on unknown flags.
    pub fn parse() -> Opts {
        let mut o = Opts {
            quick: false,
            csv: false,
            drops: false,
            seed: None,
            small: false,
            calibrated: false,
            chart: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => o.quick = true,
                "--full" => o.quick = false,
                "--csv" => o.csv = true,
                "--drops" => o.drops = true,
                "--small" => o.small = true,
                "--calibrated" => o.calibrated = true,
                "--chart" => o.chart = true,
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    o.seed = Some(v.parse().unwrap_or_else(|_| usage("--seed must be a u64")));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        o
    }

    /// The measurement protocol selected by the flags.
    pub fn protocol(&self) -> MeasurementProtocol {
        if self.quick {
            MeasurementProtocol::quick()
        } else {
            MeasurementProtocol::paper()
        }
    }

    /// The base system configuration selected by the flags.
    pub fn base(&self) -> SystemConfig {
        let mut cfg = if self.small {
            SystemConfig::small()
        } else if self.calibrated {
            SystemConfig::paper_calibrated()
        } else {
            SystemConfig::paper_default()
        };
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        cfg
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: fig* [--quick|--full] [--csv] [--drops] [--chart] [--small] [--calibrated] [--seed N]\n\
         Regenerates the corresponding figure of 'Balancing Push and Pull for\n\
         Data Broadcast' (SIGMOD 1997). --full is the paper protocol;\n\
         --calibrated uses the Zipf skew matching the paper's absolute levels."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

/// Render a figure as a response-time table: one row per x value, one
/// column per series.
pub fn response_table(fig: &Figure) -> Table {
    let mut cols: Vec<&str> = vec![fig.x_label.as_str()];
    cols.extend(fig.series.iter().map(|s| s.label.as_str()));
    let mut t = Table::new(format!("Figure {} — {}", fig.id, fig.title), &cols);
    let xs: Vec<f64> = fig.series[0].points.iter().map(|&(x, _)| x).collect();
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![fmt_units(x)];
        for s in &fig.series {
            row.push(s.points.get(i).map_or("-".into(), |&(_, y)| fmt_units(y)));
        }
        t.push_row(row);
    }
    t
}

/// Render the server drop-rate (full-queue discards) and ignore-rate
/// (drops + coalesced) companion tables for a figure whose series carry
/// per-point results.
pub fn drops_table(fig: &Figure) -> Option<Table> {
    if fig.series.iter().all(|s| s.results.is_empty()) {
        return None;
    }
    let mut cols: Vec<String> = vec![fig.x_label.clone()];
    for s in &fig.series {
        if !s.results.is_empty() {
            cols.push(format!("{} drop", s.label));
            cols.push(format!("{} ignore", s.label));
        }
    }
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("Figure {} — server drop / ignore rates", fig.id),
        &col_refs,
    );
    let xs: Vec<f64> = fig.series[0].points.iter().map(|&(x, _)| x).collect();
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![fmt_units(x)];
        for s in &fig.series {
            if s.results.is_empty() {
                continue;
            }
            match s.results.get(i) {
                Some(r) => {
                    row.push(fmt_pct(r.drop_rate));
                    row.push(fmt_pct(r.ignore_rate));
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        t.push_row(row);
    }
    Some(t)
}

/// Print a figure according to the options.
pub fn emit(fig: &Figure, opts: &Opts) {
    let t = response_table(fig);
    if opts.csv {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    if opts.chart && !opts.csv {
        let series: Vec<(String, Vec<(f64, f64)>)> = fig
            .series
            .iter()
            .map(|s| (s.label.clone(), s.points.clone()))
            .collect();
        println!(
            "{}",
            bpp_core::report::ascii_chart(&format!("Figure {}", fig.id), &series, 20)
        );
    }
    if opts.drops {
        if let Some(d) = drops_table(fig) {
            if opts.csv {
                print!("{}", d.to_csv());
            } else {
                println!("{}", d.render());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_core::experiments::Series;
    use bpp_core::runner::{SlotKinds, SteadyStateResult};

    fn dummy_result(drop: f64) -> SteadyStateResult {
        SteadyStateResult {
            mean_response: 1.0,
            ci_half_width: 0.1,
            measured_accesses: 10,
            converged: true,
            mc_hit_rate: 0.5,
            drop_rate: drop,
            ignore_rate: drop + 0.1,
            requests_received: 100,
            p50_response: Some(1.0),
            p90_response: Some(2.0),
            p99_response: Some(3.0),
            max_response: 4.0,
            slots: SlotKinds {
                push_pages: 1,
                pull_pages: 1,
                empty: 0,
                idle: 0,
            },
            sim_time: 100.0,
            fault: None,
            obs: None,
            fleet: None,
            error: None,
        }
    }

    fn dummy_fig(with_results: bool) -> Figure {
        Figure {
            id: "t".into(),
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "A".into(),
                points: vec![(1.0, 10.0), (2.0, 20.0)],
                results: if with_results {
                    vec![dummy_result(0.1), dummy_result(0.2)]
                } else {
                    Vec::new()
                },
            }],
        }
    }

    #[test]
    fn response_table_shape() {
        let t = response_table(&dummy_fig(false));
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("Figure t"));
    }

    #[test]
    fn drops_table_requires_results() {
        assert!(drops_table(&dummy_fig(false)).is_none());
        let t = drops_table(&dummy_fig(true)).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("10.0%"));
    }
}
