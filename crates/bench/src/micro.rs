//! Minimal in-tree micro-benchmark runner (`harness = false` bench
//! targets): wall-clock timing via `std::time::Instant`, automatic
//! iteration-count calibration, and machine-readable JSON output for
//! tracking the performance trajectory across commits.
//!
//! Each bench target builds one [`Group`], registers closures with
//! [`Group::bench`], and calls [`Group::finish`], which prints an aligned
//! table and writes `BENCH_<group>.json` into the working directory:
//!
//! ```json
//! {
//!   "group": "cache_trace_10k",
//!   "benchmarks": [
//!     {"name": "pix", "mean_ns": 1234.5, "median_ns": 1200.0,
//!      "min_ns": 1100.0, "max_ns": 1500.0,
//!      "samples": 30, "iters_per_sample": 8}
//!   ]
//! }
//! ```

use bpp_json::{Json, ToJson};
use std::time::Instant;

/// Target wall-clock time for one timed sample during calibration.
const TARGET_SAMPLE_NS: f64 = 5_000_000.0; // 5 ms

/// One measured benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name within the group.
    pub name: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations averaged within each sample.
    pub iters_per_sample: u64,
}

impl ToJson for BenchStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("max_ns", self.max_ns.to_json()),
            ("samples", self.samples.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
        ])
    }
}

/// A named collection of benchmarks sharing a sample budget.
pub struct Group {
    name: String,
    sample_size: usize,
    results: Vec<BenchStats>,
}

impl Group {
    /// Start a group; `name` becomes the JSON file stem (`BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            sample_size: 30,
            results: Vec::new(),
        }
    }

    /// Override the number of timed samples (default 30). Use a small value
    /// for expensive end-to-end benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples for a spread");
        self.sample_size = n;
        self
    }

    /// Measure `f`, auto-calibrating how many iterations fit in one sample.
    ///
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the optimiser cannot delete the measured work.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        // Calibrate: run once (warm-up + rough cost), then pick an
        // iteration count that makes a sample last ~TARGET_SAMPLE_NS.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as f64;
        let iters = ((TARGET_SAMPLE_NS / once_ns).round() as u64).clamp(1, 1_000_000);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = if per_iter.len() % 2 == 1 {
            per_iter[per_iter.len() / 2]
        } else {
            (per_iter[per_iter.len() / 2 - 1] + per_iter[per_iter.len() / 2]) / 2.0
        };
        let stats = BenchStats {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: median,
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            samples: per_iter.len(),
            iters_per_sample: iters,
        };
        println!(
            "{}/{:<24} mean {:>12}  median {:>12}  [{} .. {}]  ({} samples x {} iters)",
            self.name,
            stats.name,
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.max_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
    }

    /// Emit `BENCH_<group>.json` and consume the group.
    pub fn finish(self) {
        let path = format!("BENCH_{}.json", self.name);
        let doc = Json::object([
            ("group", self.name.to_json()),
            ("benchmarks", self.results.to_json()),
        ]);
        match std::fs::write(&path, doc.dump_pretty() + "\n") {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_stats() {
        let mut g = Group::new("unit_test_group");
        g.sample_size(3);
        let mut acc = 0u64;
        g.bench("wrapping_sum", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        let s = &g.results[0];
        assert_eq!(s.samples, 3);
        assert!(s.iters_per_sample >= 1);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.mean_ns > 0.0);
    }

    #[test]
    fn stats_serialize_with_the_documented_shape() {
        let s = BenchStats {
            name: "x".into(),
            mean_ns: 1.5,
            median_ns: 1.0,
            min_ns: 0.5,
            max_ns: 2.0,
            samples: 30,
            iters_per_sample: 8,
        };
        let j = bpp_json::to_string(&s);
        for key in [
            "name",
            "mean_ns",
            "median_ns",
            "min_ns",
            "max_ns",
            "samples",
            "iters_per_sample",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn single_sample_is_rejected() {
        Group::new("g").sample_size(1);
    }
}
