//! Prints the paper's parameter tables (Tables 1–3) as realised by this
//! implementation, the structure of the generated broadcast program
//! (Figure 1 example plus the evaluation program), and the analytic
//! cross-checks.

use bpp_bench::Opts;
use bpp_broadcast::{
    assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, PageId, Slot,
};
use bpp_core::analytic;
use bpp_core::report::{fmt_units, Table};
use bpp_core::{Algorithm, SystemConfig};

fn main() {
    let opts = Opts::parse();
    let cfg = opts.base();

    // Table 3: parameter settings.
    let mut t3 = Table::new("Table 3 — parameter settings", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("ServerDBSize", cfg.db_size.to_string()),
        ("CacheSize", cfg.cache_size.to_string()),
        ("MC ThinkTime", fmt_units(cfg.mc_think_time)),
        ("ThinkTimeRatio", "10, 25, 50, 100, 250".into()),
        ("SteadyStatePerc", "0%, 95%".into()),
        ("Noise", "0%, 15%, 35%".into()),
        ("Zipf theta", format!("{}", cfg.zipf_theta)),
        ("NumDisks", cfg.disk_sizes.len().to_string()),
        ("DiskSize 1,2,3", format!("{:?}", cfg.disk_sizes)),
        ("RelFreq 1,2,3", format!("{:?}", cfg.rel_freqs)),
        ("ServerQSize", cfg.server_queue_size.to_string()),
        ("PullBW", "10%..50%".into()),
        ("ThresPerc", "0%, 10%, 25%, 35%".into()),
        ("Offset", cfg.offset.to_string()),
    ];
    for (k, v) in rows {
        t3.push_row(vec![k.to_string(), v]);
    }
    println!("{}", t3.render());

    // Figure 1: the 7-page, 3-disk example program.
    let spec = DiskSpec::new(vec![1, 2, 4], vec![4, 2, 1]);
    let prog =
        BroadcastProgram::generate(&Assignment::from_ranking(&identity_ranking(7), &spec), 7);
    let names = ["a", "b", "c", "d", "e", "f", "g"];
    let layout: Vec<&str> = prog
        .slots()
        .iter()
        .map(|s| match s {
            Slot::Page(p) => names[p.index()],
            Slot::Empty => "-",
        })
        .collect();
    println!(
        "Figure 1 — example broadcast program (7 pages, disks 1/2/4 at 4:2:1):\n  {}\n",
        layout.join(" ")
    );

    // The evaluation program.
    let program = analytic::build_program(&cfg);
    let mut tp = Table::new(
        "Generated broadcast program (evaluation config)",
        &["property", "value"],
    );
    tp.push_row(vec![
        "major cycle (slots)".into(),
        program.major_cycle().to_string(),
    ]);
    tp.push_row(vec![
        "minor cycle (slots)".into(),
        program.minor_cycle().to_string(),
    ]);
    tp.push_row(vec![
        "minor cycles".into(),
        program.num_minor_cycles().to_string(),
    ]);
    tp.push_row(vec![
        "padding slots".into(),
        program.empty_slots().to_string(),
    ]);
    tp.push_row(vec![
        "distinct pages".into(),
        program.distinct_pages().to_string(),
    ]);
    for (label, pid) in [
        ("fast-disk page delay", PageId((cfg.cache_size + 1) as u32)),
        (
            "mid-disk page delay",
            PageId((cfg.cache_size + cfg.disk_sizes[0] + 1) as u32),
        ),
        ("slow-disk page delay", PageId((cfg.db_size - 1) as u32)),
    ] {
        if let Some(d) = program.expected_slots(pid) {
            tp.push_row(vec![format!("expected {label}"), fmt_units(d)]);
        }
    }
    println!("{}", tp.render());

    // Analytic cross-checks.
    let mut ta = Table::new("Analytic comparators", &["model", "value"]);
    let mut push_cfg = cfg.clone();
    push_cfg.algorithm = Algorithm::PurePush;
    ta.push_row(vec![
        "expected Pure-Push response (closed form)".into(),
        fmt_units(analytic::push_response(&push_cfg)),
    ]);
    for ttr in [10.0, 50.0, 250.0] {
        let mut c: SystemConfig = cfg.clone();
        c.algorithm = Algorithm::PurePull;
        c.think_time_ratio = ttr;
        let a = analytic::pull_mm1k(&c);
        ta.push_row(vec![
            format!("M/M/1/K pull @ TTR={ttr} (rho / block / response)"),
            format!(
                "{:.2} / {:.1}% / {}",
                a.rho,
                a.block_prob * 100.0,
                fmt_units(a.response)
            ),
        ]);
    }
    println!("{}", ta.render());
}
