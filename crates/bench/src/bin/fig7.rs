//! Regenerates Figure 7: restricting the contents of the push schedule.
//!
//! ThinkTimeRatio 25, pages chopped from the slowest disks (x axis), IPP at
//! PullBW ∈ {10, 30, 50}%.
//!
//! * 7(a): ThresPerc 0% — without a threshold, chopping overwhelms small
//!   pull bandwidths (the PullBW 10% curve blows up).
//! * 7(b): ThresPerc 35% — the threshold reserves the backchannel for the
//!   non-broadcast pages and chopping *improves* response time while the
//!   pull bandwidth lasts (the paper quotes 155 → 63 bu for PullBW 50%).

use bpp_bench::{emit, Opts};
use bpp_core::experiments::fig7;
use bpp_core::report::fmt_units;

fn main() {
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    emit(&fig7(&base, &proto, 0.0), &opts);
    let b = fig7(&base, &proto, 0.35);
    emit(&b, &opts);

    // §4.3 scalar checkpoint: IPP PullBW 50% endpoints in 7(b).
    if let Some(s) = b.series.iter().find(|s| s.label.contains("50%")) {
        if let (Some(first), Some(last)) = (s.points.first(), s.points.last()) {
            println!(
                "checkpoint S4 (paper: 155 bu at chop=0 and 63 bu at chop=700, \
                 IPP PullBW=50%, ThresPerc=35%): measured {} bu and {} bu",
                fmt_units(first.1),
                fmt_units(last.1)
            );
        }
    }
}
