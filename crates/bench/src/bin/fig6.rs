//! Regenerates Figure 6: the influence of the client threshold.
//!
//! * 6(a): PullBW 50%, ThresPerc ∈ {0, 10, 25, 35}%.
//! * 6(b): PullBW 30% (the server saturates earlier; larger thresholds win).
//!
//! With `--drops`, prints the drop-rate tables and the §4.2 checkpoint:
//! at ThinkTimeRatio 50 the paper measured 68.8% of requests dropped under
//! IPP (threshold 0) vs. 39.9% under Pure-Pull.

use bpp_bench::{drops_table, emit, Opts};
use bpp_core::experiments::{fig6, TTR_GRID_FINE};

fn main() {
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    let a = fig6(&base, &proto, 0.5);
    emit(&a, &opts);
    let b = fig6(&base, &proto, 0.3);
    emit(&b, &opts);

    // §4.2 checkpoint: drops at TTR=50 for IPP thres 0% vs Pure-Pull.
    let idx = TTR_GRID_FINE.iter().position(|&t| t == 50.0);
    if let Some(i) = idx {
        let ipp = a
            .series
            .iter()
            .find(|s| s.label.contains("ThresPerc 0%"))
            .and_then(|s| s.results.get(i));
        let pull = a
            .series
            .iter()
            .find(|s| s.label == "Pull")
            .and_then(|s| s.results.get(i));
        if let (Some(ipp), Some(pull)) = (ipp, pull) {
            println!(
                "checkpoint S3 (paper: 68.8% IPP vs 39.9% Pull dropped at TTR=50): \
                 measured IPP drop {:.1}% / ignore {:.1}%, Pull drop {:.1}% / ignore {:.1}%",
                ipp.drop_rate * 100.0,
                ipp.ignore_rate * 100.0,
                pull.drop_rate * 100.0,
                pull.ignore_rate * 100.0
            );
        }
    }
    let _ = drops_table(&b);
}
