//! Robustness scenario: response time under channel loss (the loss sweep),
//! plus a `--smoke` mode emitting a deterministic `FaultReport` as JSON for
//! the CI golden-file check.
//!
//! Default mode renders the loss-sweep figure (one curve per loss rate in
//! `LOSS_GRID`) and a fault-accounting companion table. `--smoke` runs one
//! fixed cell — the small system, IPP PullBW 50%, ThinkTimeRatio 1, 10%
//! symmetric loss, seed 42, quick protocol — and prints its fault report;
//! `scripts/ci.sh` compares the output byte-for-byte against
//! `results/fault_smoke.json`.

use bpp_bench::{emit, Opts};
use bpp_core::experiments::loss_sweep;
use bpp_core::report::{fmt_pct, fmt_units, Table};
use bpp_core::{run_steady_state, Algorithm, FaultConfig, MeasurementProtocol, SystemConfig};

fn smoke() {
    let mut cfg = SystemConfig::small();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.5;
    cfg.thres_perc = 0.0;
    cfg.steady_state_perc = 0.95;
    cfg.think_time_ratio = 1.0;
    cfg.seed = 42;
    cfg.fault = FaultConfig::lossy(0.10);
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    let report = r.fault.expect("fault model enabled");
    println!("{}", bpp_json::to_string_pretty(&report));
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    let fig = loss_sweep(&base, &proto);
    emit(&fig, &opts);

    // Companion accounting: what the fault model did per curve, at the
    // loaded end of the sweep (the first x value).
    let mut t = Table::new(
        "Loss sweep — fault accounting at the loaded end".to_string(),
        &[
            "series",
            "TTR",
            "mean resp",
            "pages lost",
            "req lost",
            "retries",
            "exhausted",
            "drop rate",
        ],
    );
    for s in &fig.series {
        if let (Some(&(x, _)), Some(r)) = (s.points.first(), s.results.first()) {
            let f = r.fault.unwrap_or_default();
            t.push_row(vec![
                s.label.clone(),
                fmt_units(x),
                fmt_units(r.mean_response),
                f.channel.pages_lost.to_string(),
                f.channel.requests_lost.to_string(),
                f.retries.to_string(),
                f.retries_exhausted.to_string(),
                fmt_pct(r.drop_rate),
            ]);
        }
    }
    if opts.csv {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
