//! Million-client scenario: the population sweep (arena fleet vs. the
//! aggregate Virtual Client), plus a `--smoke` mode emitting one
//! deterministic fleet cell as JSON for the CI golden-file check.
//!
//! Default mode renders the `fleet_sweep` figure (MC response with the VC
//! reference line, fleet mean flow, fleet max stretch — all vs. population
//! size) and a per-population companion table of fleet accounting.
//! `--smoke` runs one fixed cell — the small system, IPP PullBW 50%,
//! ThinkTimeRatio 1, a 200-client fleet, seed 42, quick protocol — and
//! prints the complete `SteadyStateResult` (including its `fleet` section);
//! `scripts/ci.sh` compares the output byte-for-byte against
//! `results/fleet_smoke.json`.

use bpp_bench::{emit, Opts};
use bpp_core::experiments::fleet_sweep;
use bpp_core::report::{fmt_pct, fmt_units, Table};
use bpp_core::{run_steady_state, Algorithm, ClientPopulation, MeasurementProtocol, SystemConfig};

fn smoke() {
    let mut cfg = SystemConfig::small();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.5;
    cfg.thres_perc = 0.0;
    cfg.steady_state_perc = 0.95;
    cfg.think_time_ratio = 1.0;
    cfg.seed = 42;
    cfg.population = ClientPopulation::fleet(200);
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.fleet.is_some(), "fleet population ran");
    println!("{}", bpp_json::to_string_pretty(&r));
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    let fig = fleet_sweep(&base, &proto);
    emit(&fig, &opts);

    // Companion accounting: what each fleet population did, one row per
    // swept size (taken from the MC-response series, which carries the
    // fleet runs).
    let mut t = Table::new(
        "Population sweep — fleet accounting".to_string(),
        &[
            "clients",
            "accesses",
            "hit rate",
            "sent",
            "filtered",
            "completed",
            "mean flow",
            "p99 flow",
            "max stretch",
            "retries",
        ],
    );
    for r in &fig.series[1].results {
        if let Some(f) = &r.fleet {
            t.push_row(vec![
                f.clients.to_string(),
                f.accesses.to_string(),
                fmt_pct(f.hit_rate),
                f.requests_sent.to_string(),
                f.requests_filtered.to_string(),
                f.completed.to_string(),
                fmt_units(f.mean_flow),
                f.p99_flow.map_or("-".into(), fmt_units),
                fmt_units(f.max_stretch),
                f.retries.to_string(),
            ]);
        }
    }
    if opts.csv {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
