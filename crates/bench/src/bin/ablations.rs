//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Cache policy** (Pure-Push): PIX vs. P vs. LRU vs. LFU — reproduces
//!    the \[Acha95a\] claim that probability-only and recency policies lose
//!    to cost-based PIX on a multi-disk broadcast.
//! 2. **Offset** (Pure-Push): offset on vs. off — why the server shifts the
//!    client-cached hot pages to the slowest disk.
//! 3. **Queue discipline** (IPP under load): FIFO vs. most-requested-first.
//! 4. **Adaptive IPP** (extension): static knobs vs. the drop-rate-driven
//!    controller across the load sweep.

use bpp_bench::Opts;
use bpp_core::adaptive::{run_adaptive, AdaptiveConfig};
use bpp_core::experiments::{par_run, TTR_GRID};
use bpp_core::report::{fmt_units, Table};
use bpp_core::{run_steady_state, Algorithm, CachePolicy, QueueDiscipline, SystemConfig};

fn main() {
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    // --- 1. Cache policy under Pure-Push. ---
    let mut t = Table::new(
        "Ablation 1 — MC cache policy under Pure-Push",
        &["policy", "response (bu)", "hit rate"],
    );
    for (name, policy) in [
        ("PIX (paper)", CachePolicy::Pix),
        ("P", CachePolicy::P),
        ("LRU", CachePolicy::Lru),
        ("LFU", CachePolicy::Lfu),
    ] {
        let mut c = base.clone();
        c.algorithm = Algorithm::PurePush;
        c.mc_cache_policy = Some(policy);
        let r = run_steady_state(&c, &proto);
        t.push_row(vec![
            name.into(),
            fmt_units(r.mean_response),
            format!("{:.1}%", r.mc_hit_rate * 100.0),
        ]);
    }
    println!("{}", t.render());

    // --- 2. Offset on/off under Pure-Push. ---
    let mut t = Table::new(
        "Ablation 2 — Offset transform under Pure-Push",
        &["offset", "response (bu)", "hit rate"],
    );
    for on in [true, false] {
        let mut c = base.clone();
        c.algorithm = Algorithm::PurePush;
        c.offset = on;
        let r = run_steady_state(&c, &proto);
        t.push_row(vec![
            on.to_string(),
            fmt_units(r.mean_response),
            format!("{:.1}%", r.mc_hit_rate * 100.0),
        ]);
    }
    println!("{}", t.render());

    // --- 3. Queue discipline under loaded IPP. ---
    let mut t = Table::new(
        "Ablation 3 — server queue discipline, IPP PullBW=50%",
        &["TTR", "FIFO (paper)", "MostRequested"],
    );
    let mk = |disc: QueueDiscipline| -> Vec<SystemConfig> {
        TTR_GRID
            .iter()
            .map(|&ttr| {
                let mut c = base.clone();
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = 0.5;
                c.think_time_ratio = ttr;
                c.queue_discipline = disc;
                c
            })
            .collect()
    };
    let fifo = par_run(&mk(QueueDiscipline::Fifo), &proto);
    let mrf = par_run(&mk(QueueDiscipline::MostRequested), &proto);
    for ((ttr, f), m) in TTR_GRID.iter().zip(&fifo).zip(&mrf) {
        t.push_row(vec![
            fmt_units(*ttr),
            fmt_units(f.mean_response),
            fmt_units(m.mean_response),
        ]);
    }
    println!("{}", t.render());

    // --- 3b. Opportunistic prefetching (extension, [Acha96a]). ---
    let mut t = Table::new(
        "Ablation 3b — demand caching vs opportunistic prefetch (Pure-Push)",
        &["metric", "demand (paper)", "prefetch"],
    );
    {
        let mk = |prefetch: bool| {
            let mut c = base.clone();
            c.algorithm = Algorithm::PurePush;
            c.mc_prefetch = prefetch;
            c
        };
        let rd = run_steady_state(&mk(false), &proto);
        let rp = run_steady_state(&mk(true), &proto);
        t.push_row(vec![
            "steady-state response (bu)".into(),
            fmt_units(rd.mean_response),
            fmt_units(rp.mean_response),
        ]);
        let wd = bpp_core::run_warmup(&mk(false), &proto);
        let wp = bpp_core::run_warmup(&mk(true), &proto);
        let last = |w: &bpp_core::WarmupResult| {
            w.times
                .last()
                .copied()
                .flatten()
                .map_or("> cap".to_string(), fmt_units)
        };
        t.push_row(vec!["95% warm-up time (bu)".into(), last(&wd), last(&wp)]);
    }
    println!("{}", t.render());

    // --- 4. Static vs adaptive IPP. ---
    let mut t = Table::new(
        "Ablation 4 — static IPP (PullBW=50%, Thres=0) vs adaptive IPP",
        &["TTR", "static", "adaptive", "final PullBW", "final Thres"],
    );
    for &ttr in &TTR_GRID {
        let mut c = base.clone();
        c.algorithm = Algorithm::Ipp;
        c.pull_bw = 0.5;
        c.thres_perc = 0.0;
        c.think_time_ratio = ttr;
        let stat = run_steady_state(&c, &proto);
        let adpt = run_adaptive(&c, &proto, AdaptiveConfig::default());
        t.push_row(vec![
            fmt_units(ttr),
            fmt_units(stat.mean_response),
            fmt_units(adpt.steady.mean_response),
            format!("{:.0}%", adpt.final_pull_bw * 100.0),
            format!("{:.0}%", adpt.final_thres_perc * 100.0),
        ]);
    }
    println!("{}", t.render());
}
