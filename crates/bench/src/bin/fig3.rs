//! Regenerates Figure 3: the basic push/pull trade-off.
//!
//! * 3(a): Push, Pull and IPP (PullBW 50%) vs. ThinkTimeRatio at
//!   SteadyStatePerc 0% / 95%.
//! * 3(b): IPP PullBW ∈ {10, 30, 50}% at SteadyStatePerc 95%.
//!
//! With `--drops`, also prints the server drop/ignore rates — including the
//! §4.1.2 checkpoint that IPP at PullBW 10% drops a large share of requests
//! even at ThinkTimeRatio 10 (the paper measured 58%).

use bpp_bench::{emit, Opts};
use bpp_core::experiments::{fig3a, fig3b};

fn main() {
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    let a = fig3a(&base, &proto);
    emit(&a, &opts);

    let b = fig3b(&base, &proto);
    emit(&b, &opts);

    // §4.1.2 scalar checkpoint: drops for IPP PullBW=10% at TTR=10.
    if let Some(s) = b.series.iter().find(|s| s.label.contains("10%")) {
        if let Some(r) = s.results.first() {
            println!(
                "checkpoint S2 (paper: 58% of pulls dropped, IPP PullBW=10%, TTR=10): \
                 measured drop {:.1}%, ignore {:.1}%",
                r.drop_rate * 100.0,
                r.ignore_rate * 100.0
            );
        }
    }
}
