//! Regenerates Figure 5: sensitivity to access-pattern divergence (Noise).
//!
//! * 5(a): Pure-Pull vs. Pure-Push at Noise ∈ {0, 15, 35}%.
//! * 5(b): IPP (PullBW 50%) vs. Pure-Push at the same Noise levels.
//!
//! Expected shape: at light load the pull side is insensitive to Noise; at
//! heavy load Noise hurts badly (the MC depends on other clients requesting
//! its pages). IPP saturates earlier but is overall less Noise-sensitive
//! thanks to the push "safety net".

use bpp_bench::{emit, Opts};
use bpp_core::experiments::{fig5a, fig5b};

fn main() {
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();
    emit(&fig5a(&base, &proto), &opts);
    emit(&fig5b(&base, &proto), &opts);
}
