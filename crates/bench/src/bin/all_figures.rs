//! Runs every figure of the evaluation in sequence and writes both the
//! aligned tables (stdout) and CSV files under `results/`.
//!
//! This is the one-command full reproduction:
//!
//! ```text
//! cargo run --release -p bpp-bench --bin all_figures            # paper protocol
//! cargo run --release -p bpp-bench --bin all_figures -- --quick # smoke run
//! ```

use bpp_bench::{drops_table, response_table, Opts};
use bpp_core::experiments::{fig3a, fig3b, fig4, fig5a, fig5b, fig6, fig7, fig8, Figure};
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");

    type FigureThunk<'a> = Box<dyn Fn() -> Figure + 'a>;
    let figures: Vec<(&str, FigureThunk)> = vec![
        ("fig3a", Box::new(|| fig3a(&base, &proto))),
        ("fig3b", Box::new(|| fig3b(&base, &proto))),
        ("fig4a", Box::new(|| fig4(&base, &proto, 25.0))),
        ("fig4b", Box::new(|| fig4(&base, &proto, 250.0))),
        ("fig5a", Box::new(|| fig5a(&base, &proto))),
        ("fig5b", Box::new(|| fig5b(&base, &proto))),
        ("fig6a", Box::new(|| fig6(&base, &proto, 0.5))),
        ("fig6b", Box::new(|| fig6(&base, &proto, 0.3))),
        ("fig7a", Box::new(|| fig7(&base, &proto, 0.0))),
        ("fig7b", Box::new(|| fig7(&base, &proto, 0.35))),
        ("fig8", Box::new(|| fig8(&base, &proto))),
    ];

    for (name, run) in figures {
        let t0 = Instant::now();
        let fig = run();
        let table = response_table(&fig);
        println!("{}", table.render());
        fs::write(out_dir.join(format!("{name}.csv")), table.to_csv()).expect("write figure csv");
        if let Some(d) = drops_table(&fig) {
            fs::write(out_dir.join(format!("{name}_drops.csv")), d.to_csv())
                .expect("write drops csv");
        }
        eprintln!("[{name}] done in {:.1?}", t0.elapsed());
    }
    eprintln!("CSV files written to {}", out_dir.display());
}
