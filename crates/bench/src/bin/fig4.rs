//! Regenerates Figure 4: client cache warm-up time.
//!
//! * 4(a): ThinkTimeRatio 25 (lightly loaded) — Pure-Pull warms fastest.
//! * 4(b): ThinkTimeRatio 250 (heavily loaded) — the ordering inverts and
//!   Pure-Push warms fastest.
//!
//! X axis: percentage of the `CacheSize` highest-valued pages acquired;
//! Y: broadcast units since the cold start.

use bpp_bench::{emit, Opts};
use bpp_core::experiments::fig4;

fn main() {
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();
    emit(&fig4(&base, &proto, 25.0), &opts);
    emit(&fig4(&base, &proto, 250.0), &opts);
}
