//! Observability scenario: run one obs-enabled cell and render what the
//! deterministic observability layer collected, plus a `--smoke` mode
//! emitting the full serialized result as JSON for the CI golden-file check.
//!
//! Default mode runs an IPP cell with the obs layer on (and 10% symmetric
//! loss so the retry/saturation traces have something to record) and prints
//! three tables: the counter registry, a per-timeline summary, and the tail
//! of the trace ring. `--smoke` runs one fixed cell — the small system, IPP
//! PullBW 50%, ThinkTimeRatio 1, 10% symmetric loss, seed 42, quick
//! protocol — and prints the complete `SteadyStateResult` (including its
//! `obs` section); `scripts/ci.sh` compares the output byte-for-byte
//! against `results/obs_smoke.json`.

use bpp_bench::Opts;
use bpp_core::report::{fmt_units, Table};
use bpp_core::{run_steady_state, Algorithm, FaultConfig, MeasurementProtocol, SystemConfig};
use bpp_obs::ObsReport;

fn smoke() {
    let mut cfg = SystemConfig::small();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.5;
    cfg.thres_perc = 0.0;
    cfg.steady_state_perc = 0.95;
    cfg.think_time_ratio = 1.0;
    cfg.seed = 42;
    cfg.fault = FaultConfig::lossy(0.10);
    cfg.obs.enabled = true;
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.obs.is_some(), "obs layer enabled");
    println!("{}", bpp_json::to_string_pretty(&r));
}

fn counters_table(report: &ObsReport) -> Table {
    let mut t = Table::new("Observability — counters".to_string(), &["name", "value"]);
    for (name, value) in report.metrics.counters() {
        t.push_row(vec![name.to_string(), value.to_string()]);
    }
    t
}

fn gauges_table(report: &ObsReport) -> Option<Table> {
    let mut t = Table::new("Observability — gauges".to_string(), &["name", "value"]);
    let mut any = false;
    for (name, value) in report.metrics.gauges() {
        t.push_row(vec![name.to_string(), fmt_units(value)]);
        any = true;
    }
    any.then_some(t)
}

fn timelines_table(report: &ObsReport) -> Table {
    let mut t = Table::new(
        "Observability — timelines".to_string(),
        &["series", "stride", "points", "peak mean", "peak max"],
    );
    for (name, series) in &report.timelines {
        let points = series.points();
        let peak_mean = points.iter().map(|&(_, m, _)| m).fold(0.0_f64, f64::max);
        let peak_max = points.iter().map(|&(_, _, x)| x).fold(0.0_f64, f64::max);
        t.push_row(vec![
            name.clone(),
            fmt_units(series.stride()),
            points.len().to_string(),
            fmt_units(peak_mean),
            fmt_units(peak_max),
        ]);
    }
    t
}

fn trace_table(report: &ObsReport) -> Table {
    let mut t = Table::new(
        format!(
            "Observability — trace tail ({} kept, {} dropped)",
            report.trace.len(),
            report.trace.dropped()
        ),
        &["t", "label", "value"],
    );
    const TAIL: usize = 10;
    let skip = report.trace.len().saturating_sub(TAIL);
    for e in report.trace.entries().skip(skip) {
        t.push_row(vec![
            fmt_units(e.t),
            e.label.to_string(),
            fmt_units(e.value),
        ]);
    }
    t
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let opts = Opts::parse();
    let mut cfg = opts.base();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.5;
    cfg.think_time_ratio = 1.0;
    cfg.fault = FaultConfig::lossy(0.10);
    cfg.obs.enabled = true;
    let r = run_steady_state(&cfg, &opts.protocol());
    // bpp-lint: allow(D3): cfg.obs.enabled was just set, so the report is always present
    let report = r.obs.as_ref().expect("obs layer enabled");

    println!("{}", counters_table(report).render());
    if let Some(g) = gauges_table(report) {
        println!("{}", g.render());
    }
    println!("{}", timelines_table(report).render());
    println!("{}", trace_table(report).render());
    println!(
        "mean response {} over {} measured accesses ({} sim units)",
        fmt_units(r.mean_response),
        r.measured_accesses,
        fmt_units(r.sim_time)
    );
}
