//! K-channel scenario: the channel-count sweep (conflict-free multi-channel
//! broadcast with channel-tuning clients and a sharded pull service), plus
//! a `--smoke` mode emitting one deterministic K-channel cell as JSON for
//! the CI golden-file check.
//!
//! Default mode renders the `channel_sweep` figure (mean response vs.
//! channel count, one curve per ThinkTimeRatio) and a companion table of
//! slot accounting along the loaded curve. `--smoke` runs one fixed cell —
//! the small system, IPP PullBW 50%, ThinkTimeRatio 10, four channels, the
//! obs layer on, seed 42, quick protocol — and prints the complete
//! `SteadyStateResult` (including the per-channel `server.ch<k>.*` /
//! `broadcast.ch<k>.*` timelines in its `obs` section); `scripts/ci.sh`
//! compares the output byte-for-byte against `results/channels_smoke.json`.

use bpp_bench::{emit, Opts};
use bpp_core::experiments::channel_sweep;
use bpp_core::report::{fmt_pct, fmt_units, Table};
use bpp_core::{run_steady_state, Algorithm, MeasurementProtocol, SystemConfig};

fn smoke() {
    let mut cfg = SystemConfig::small();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.5;
    cfg.thres_perc = 0.0;
    cfg.steady_state_perc = 0.95;
    cfg.think_time_ratio = 10.0;
    cfg.seed = 42;
    cfg.num_channels = 4;
    cfg.obs.enabled = true;
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    let obs = r.obs.as_ref().expect("obs layer enabled");
    assert!(
        obs.timelines
            .iter()
            .any(|(n, _)| n == "server.ch3.queue_depth"),
        "per-channel timelines present"
    );
    println!("{}", bpp_json::to_string_pretty(&r));
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    let fig = channel_sweep(&base, &proto);
    emit(&fig, &opts);

    // Companion accounting along the loaded curve (the last series — VC
    // intensity grows with TTR): how the slot mix and the pull load
    // redistribute as channels are added.
    let mut t = Table::new(
        "Channel sweep — slot accounting (loaded curve)".to_string(),
        &[
            "channels",
            "mean response",
            "push slots",
            "pull slots",
            "empty",
            "idle",
            "requests",
            "drop rate",
            "p99 response",
        ],
    );
    let loaded = fig.series.last().expect("the sweep always has series");
    for (&(k, _), r) in loaded.points.iter().zip(&loaded.results) {
        t.push_row(vec![
            format!("{k:.0}"),
            fmt_units(r.mean_response),
            r.slots.push_pages.to_string(),
            r.slots.pull_pages.to_string(),
            r.slots.empty.to_string(),
            r.slots.idle.to_string(),
            r.requests_received.to_string(),
            fmt_pct(r.drop_rate),
            r.p99_response.map_or("-".into(), fmt_units),
        ]);
    }
    if opts.csv {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
