//! Extension studies beyond the paper's core evaluation:
//!
//! 1. **Volatile data** (\[Acha96b\], the paper's assumption 3): response
//!    time vs. server update rate under Pure-Push and IPP.
//! 2. **Indexing on air** (\[Imie94b\], the paper's predictability
//!    footnote): access vs. tuning time for (1, m) indexing at several
//!    replication factors, including the √(data/index) rule.
//! 3. **Automatic program design**: the square-root-rule partition
//!    optimiser vs. the paper's hand-tuned 100/400/500 @ 3:2:1 layout.

use bpp_bench::Opts;
use bpp_broadcast::design::{design_disks, expected_wait};
use bpp_broadcast::indexing::{optimal_m, IndexedProgram};
use bpp_core::report::{fmt_units, Table};
use bpp_core::{analytic, run_steady_state, Algorithm};
use bpp_workload::Zipf;

fn main() {
    let opts = Opts::parse();
    let base: bpp_core::SystemConfig = opts.base();
    let proto = opts.protocol();

    // --- 1. Update-rate sensitivity. ---
    // Demand caching suffers badly under hot-correlated updates: the offset
    // transform parks the hot pages on the *slowest* disk, so every
    // invalidated hot page costs a near-full major cycle to win back.
    // [Acha96b]'s robustness result assumed autoprefetching clients — our
    // prefetch extension recovers exactly that.
    let mut t = Table::new(
        "Extension 1 — volatile data: response vs update rate (updates/slot)",
        &[
            "update rate",
            "Push (demand)",
            "Push (autoprefetch)",
            "IPP PullBW=50%",
        ],
    );
    for rate in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
        let mut row = vec![format!("{rate}")];
        for (algo, prefetch) in [
            (Algorithm::PurePush, false),
            (Algorithm::PurePush, true),
            (Algorithm::Ipp, false),
        ] {
            let mut c = base.clone();
            c.algorithm = algo;
            c.pull_bw = 0.5;
            c.update_rate = rate;
            c.mc_prefetch = prefetch;
            c.think_time_ratio = 25.0;
            let r = run_steady_state(&c, &proto);
            row.push(fmt_units(r.mean_response));
        }
        t.push_row(row);
    }
    println!("{}", t.render());

    // --- 2. Indexing on air. ---
    let program = analytic::build_program(&base);
    let zipf = Zipf::new(base.db_size, base.zipf_theta);
    let index_size = 16usize;
    let mut t = Table::new(
        format!(
            "Extension 2 — (1,m) indexing, index={index_size} slots, data cycle={}",
            program.major_cycle()
        ),
        &["m", "cycle", "access time", "tuning time"],
    );
    let (b_access, b_tuning) = IndexedProgram::baseline_times(&program, zipf.probs());
    t.push_row(vec![
        "none".into(),
        program.major_cycle().to_string(),
        fmt_units(b_access),
        fmt_units(b_tuning),
    ]);
    let m_star = optimal_m(program.major_cycle(), index_size);
    for m in [1usize, 2, 4, m_star, 2 * m_star] {
        let ip = IndexedProgram::new(&program, index_size, m);
        let (access, tuning) = ip.expected_times(zipf.probs());
        let label = if m == m_star {
            format!("{m} (= m*)")
        } else {
            m.to_string()
        };
        t.push_row(vec![
            label,
            ip.total_cycle().to_string(),
            fmt_units(access),
            fmt_units(tuning),
        ]);
    }
    println!("{}", t.render());

    // --- 3. Automatic program design. ---
    let mut t = Table::new(
        "Extension 3 — disk-shape optimiser vs the paper's layout (no cache)",
        &[
            "skew θ",
            "designed sizes @ freqs",
            "designed wait",
            "paper-layout wait",
        ],
    );
    for theta in [0.5, base.zipf_theta, 1.2] {
        let z = Zipf::new(base.db_size, theta);
        let d = design_disks(z.probs(), 3, 8);
        let paper = expected_wait(z.probs(), &base.disk_sizes, &base.rel_freqs);
        t.push_row(vec![
            format!("{theta}"),
            format!("{:?} @ {:?}", d.spec.sizes, d.spec.rel_freqs),
            fmt_units(d.expected_wait),
            fmt_units(paper),
        ]);
    }
    println!("{}", t.render());
}
