//! Regenerates Figure 8: server-load sensitivity of the restricted push
//! schedule (IPP PullBW 30%, ThresPerc 35%, chop ∈ {0, 200, 300, 500, 700}).
//!
//! Expected shape: under light load, deeper chopping helps (more bandwidth
//! for pulls); past saturation the ordering inverts — heavily chopped
//! schedules lose their safety net and the −700 curve ends up worse than
//! Pure-Pull across the range.

use bpp_bench::{emit, Opts};
use bpp_core::experiments::fig8;

fn main() {
    let opts = Opts::parse();
    emit(&fig8(&opts.base(), &opts.protocol()), &opts);
}
