//! Static broadcast-program verification gate.
//!
//! Runs bpp-verify's rules V0–V6 over every experiment-grid configuration
//! (`bpp_core::experiments::verify_targets`) derived from the paper
//! defaults and prints the findings in human form; `--deny` exits 1 when
//! any rule fires, which is how `scripts/ci.sh` gates merges. `--smoke`
//! instead sweeps the small-system grid and emits the schema-versioned
//! JSON report; CI compares it byte-for-byte against
//! `results/verify_smoke.json` so report drift (new rules, message edits,
//! schema changes) is always an intentional golden regeneration.

use bpp_core::SystemConfig;
use bpp_verify::verify_grid;

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        let report = verify_grid(&SystemConfig::small());
        print!("{}", report.to_json_string());
        return;
    }
    let deny = std::env::args().any(|a| a == "--deny");
    let report = verify_grid(&SystemConfig::paper_default());
    print!("{}", report.render_human());
    if deny && !report.is_clean() {
        std::process::exit(1);
    }
}
