//! Crash–recovery scenario: restart herds vs. population with the
//! admission layer off/on (the crash sweep), plus a `--smoke` mode running
//! one fixed chaos timeline through the conservation auditor and emitting
//! its `ChaosResult` as JSON for the CI golden-file check.
//!
//! Default mode renders the crash-sweep figure (`C1`: MTTR and restart-herd
//! peak, admission off vs. on) and a crash-accounting companion table.
//! `--smoke` runs one fixed chaos timeline — the small system, IPP PullBW
//! 50%, a calm phase, a lossy phase with a crash, and a brownout phase,
//! seed 42, quick protocol — audits request conservation (the run panics
//! on any violation) and prints the result; `scripts/ci.sh` compares the
//! output byte-for-byte against `results/chaos_smoke.json`.

use bpp_bench::{emit, Opts};
use bpp_core::experiments::crash_sweep;
use bpp_core::report::{fmt_units, Table};
use bpp_core::{
    run_chaos, Algorithm, CrashConfig, FaultPhase, FaultSchedule, MeasurementProtocol, SystemConfig,
};

fn smoke() {
    let mut cfg = SystemConfig::small();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.5;
    cfg.thres_perc = 0.0;
    cfg.steady_state_perc = 0.95;
    cfg.think_time_ratio = 1.0;
    cfg.seed = 42;
    cfg.fault.crash = CrashConfig {
        mtbf: 0.0,
        downtime: 20.0,
        schedule: vec![],
        reconnect_jitter: 0.5,
        recovery_epsilon: 0.25,
    };
    let schedule = FaultSchedule {
        phases: vec![
            FaultPhase::calm(3_000.0),
            FaultPhase {
                duration: 2_000.0,
                broadcast_loss: 0.1,
                request_loss: 0.1,
                crash_offset: Some(500.0),
                ..FaultPhase::calm(2_000.0)
            },
            FaultPhase {
                duration: 2_000.0,
                brownout_period: 500.0,
                brownout_duration: 100.0,
                ..FaultPhase::calm(2_000.0)
            },
        ],
    };
    let r = run_chaos(&cfg, &MeasurementProtocol::quick(), &schedule);
    println!("{}", bpp_json::to_string_pretty(&r));
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let opts = Opts::parse();
    let base = opts.base();
    let proto = opts.protocol();

    let fig = crash_sweep(&base, &proto);
    emit(&fig, &opts);

    // Companion accounting: what the crash domain did per curve, at the
    // largest population (the herd end of the sweep).
    let mut t = Table::new(
        "Crash sweep — recovery accounting at the largest population".to_string(),
        &[
            "series",
            "clients",
            "crashes",
            "orphaned",
            "herd peak",
            "MTTR",
            "admitted",
            "rejected",
        ],
    );
    for s in &fig.series {
        if let (Some(&(x, _)), Some(r)) = (s.points.last(), s.results.last()) {
            let c = r.fault.as_ref().and_then(|f| f.crash).unwrap_or_default();
            t.push_row(vec![
                s.label.clone(),
                fmt_units(x),
                c.crashes.to_string(),
                c.orphaned.to_string(),
                c.herd_peak_depth.to_string(),
                fmt_units(c.mean_time_to_recover),
                c.admitted.to_string(),
                c.admission_rejected.to_string(),
            ]);
        }
    }
    if opts.csv {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
