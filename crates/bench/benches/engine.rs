//! Microbenchmarks for the event-engine hot paths: dispatch throughput
//! (with and without the observability probe), scheduler churn, and the
//! tombstone drain inside `run_until` / `peek_live`.

#![allow(missing_docs)]

use bpp_core::{Algorithm, ClientPopulation, MeasurementProtocol, SystemConfig, World};
use bpp_sim::{Engine, EngineObs, Model, Scheduler, Time};
use std::hint::black_box;

use bpp_bench::Group;

/// Self-rescheduling chain: one live event at a time, `remaining` dispatches.
struct Pump {
    remaining: u64,
}

struct Tick;

impl Model for Pump {
    type Event = Tick;
    fn handle(&mut self, _now: Time, _ev: Tick, sched: &mut Scheduler<Tick>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(1.0, Tick);
        }
    }
    fn event_label(_ev: &Tick) -> &'static str {
        "tick"
    }
}

/// Inert model for pure scheduler-churn measurements.
struct Sink;

impl Model for Sink {
    type Event = Tick;
    fn handle(&mut self, _now: Time, _ev: Tick, _sched: &mut Scheduler<Tick>) {}
}

fn dispatch_chain(n: u64, obs: bool) -> u64 {
    let mut engine = Engine::new(Pump { remaining: n });
    if obs {
        engine.enable_obs(EngineObs::new(100.0));
    }
    engine.scheduler().schedule_in(1.0, Tick);
    engine.run_to_completion();
    engine.dispatched()
}

fn main() {
    let mut g = Group::new("engine");
    g.sample_size(10);

    g.bench("dispatch_chain_10k", || dispatch_chain(10_000, false));
    g.bench("dispatch_chain_10k_obs", || dispatch_chain(10_000, true));

    // Schedule 1024 events, cancel every other one, then run_until past all
    // of them: each tombstoned head is drained by `peek_live`.
    g.bench("run_until_half_tombstoned_1k", || {
        let mut engine = Engine::new(Sink);
        let ids: Vec<_> = (0..1024)
            .map(|i| engine.scheduler().schedule_at(i as Time, Tick))
            .collect();
        for id in ids.iter().step_by(2) {
            engine.scheduler().cancel(*id);
        }
        engine.run_until(black_box(2048.0));
        engine.dispatched()
    });

    // Fleet events/sec: a 10k-client arena fleet driving the full world
    // for 500 broadcast units — wake/deliver/retry traffic through the
    // timer wheel, not just the bare engine.
    g.bench("fleet_world_10k_clients_500_slots", || {
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::Ipp;
        cfg.pull_bw = 0.5;
        cfg.thres_perc = 0.0;
        cfg.steady_state_perc = 0.95;
        cfg.think_time_ratio = 1.0;
        cfg.seed = 7;
        cfg.population = ClientPopulation::fleet(10_000);
        let proto = MeasurementProtocol::quick();
        let mut engine = World::steady_state(&cfg, &proto).into_engine();
        engine.run_until(black_box(500.0));
        engine.dispatched()
    });

    // Pure scheduler churn: schedule/cancel with no dispatch at all.
    g.bench("schedule_cancel_1k", || {
        let mut engine = Engine::new(Sink);
        let ids: Vec<_> = (0..1024)
            .map(|i| engine.scheduler().schedule_at(i as Time, Tick))
            .collect();
        let mut cancelled = 0u32;
        for id in ids {
            cancelled += u32::from(engine.scheduler().cancel(id));
        }
        cancelled
    });

    g.finish();
}
