//! Microbenchmarks for the server request queue.

#![allow(missing_docs)]

use bpp_bench::Group;
use bpp_broadcast::PageId;
use bpp_server::{Discipline, RequestQueue};
use bpp_sim::rng::Xoshiro256pp;
use bpp_workload::{AliasTable, Zipf};
use std::hint::black_box;

fn request_trace(n: usize) -> Vec<PageId> {
    let z = Zipf::new(1000, 0.95);
    let t = AliasTable::new(z.probs());
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    (0..n).map(|_| PageId(t.sample(&mut rng) as u32)).collect()
}

fn main() {
    let trace = request_trace(10_000);
    let mut g = Group::new("queue_10k_requests");
    for (name, disc) in [
        ("fifo", Discipline::Fifo),
        ("most_requested", Discipline::MostRequested),
    ] {
        g.bench(name, || {
            let mut q = RequestQueue::with_discipline(100, disc);
            // Interleave 4 submissions per pop, like an overloaded server.
            for chunk in trace.chunks(4) {
                for &p in chunk {
                    q.submit(p);
                }
                black_box(q.pop());
            }
            q.stats().received
        });
    }
    g.finish();
}
