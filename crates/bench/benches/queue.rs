//! Criterion microbenchmarks for the server request queue.

#![allow(missing_docs)] // criterion_group!/criterion_main! expand undocumented items

use bpp_broadcast::PageId;
use bpp_server::{Discipline, RequestQueue};
use bpp_workload::{AliasTable, Zipf};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn request_trace(n: usize) -> Vec<PageId> {
    let z = Zipf::new(1000, 0.95);
    let t = AliasTable::new(z.probs());
    let mut rng = SmallRng::seed_from_u64(7);
    (0..n).map(|_| PageId(t.sample(&mut rng) as u32)).collect()
}

fn bench_queue(c: &mut Criterion) {
    let trace = request_trace(10_000);
    let mut g = c.benchmark_group("queue_10k_requests");
    for (name, disc) in [
        ("fifo", Discipline::Fifo),
        ("most_requested", Discipline::MostRequested),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut q = RequestQueue::with_discipline(100, disc);
                // Interleave 4 submissions per pop, like an overloaded server.
                for chunk in trace.chunks(4) {
                    for &p in chunk {
                        q.submit(p);
                    }
                    black_box(q.pop());
                }
                black_box(q.stats().received)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
