//! Criterion microbenchmarks for broadcast-program construction and

#![allow(missing_docs)] // criterion_group!/criterion_main! expand undocumented items
//! schedule queries (the per-slot hot path of the simulator).

use bpp_broadcast::{assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, PageId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn paper_assignment() -> Assignment {
    Assignment::with_offset(&identity_ranking(1000), &DiskSpec::paper_default(), 100)
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("program_generation");
    g.bench_function("paper_1000_pages", |b| {
        let a = paper_assignment();
        b.iter(|| BroadcastProgram::generate(black_box(&a), 1000));
    });
    g.bench_function("large_10000_pages", |b| {
        let spec = DiskSpec::new(vec![1000, 4000, 5000], vec![3, 2, 1]);
        let a = Assignment::with_offset(&identity_ranking(10_000), &spec, 1000);
        b.iter(|| BroadcastProgram::generate(black_box(&a), 10_000));
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let program = BroadcastProgram::generate(&paper_assignment(), 1000);
    let mut g = c.benchmark_group("schedule_queries");
    g.bench_function("slots_until", |b| {
        let mut cursor = 0usize;
        let mut page = 0u32;
        b.iter(|| {
            cursor = (cursor + 97) % program.major_cycle();
            page = (page + 13) % 1000;
            black_box(program.slots_until(PageId(page), cursor))
        });
    });
    g.bench_function("expected_slots", |b| {
        let mut page = 0u32;
        b.iter(|| {
            page = (page + 13) % 1000;
            black_box(program.expected_slots(PageId(page)))
        });
    });
    g.bench_function("frequency", |b| {
        let mut page = 0u32;
        b.iter(|| {
            page = (page + 13) % 1000;
            black_box(program.frequency(PageId(page)))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_queries);
criterion_main!(benches);
