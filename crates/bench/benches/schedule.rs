//! Microbenchmarks for broadcast-program construction and schedule queries
//! (the per-slot hot path of the simulator).

#![allow(missing_docs)]

use bpp_bench::Group;
use bpp_broadcast::{assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, PageId};
use std::hint::black_box;

fn paper_assignment() -> Assignment {
    Assignment::with_offset(&identity_ranking(1000), &DiskSpec::paper_default(), 100)
}

fn main() {
    let mut gen = Group::new("program_generation");
    {
        let a = paper_assignment();
        gen.bench("paper_1000_pages", || {
            BroadcastProgram::generate(black_box(&a), 1000)
        });
    }
    {
        let spec = DiskSpec::new(vec![1000, 4000, 5000], vec![3, 2, 1]);
        let a = Assignment::with_offset(&identity_ranking(10_000), &spec, 1000);
        gen.bench("large_10000_pages", || {
            BroadcastProgram::generate(black_box(&a), 10_000)
        });
    }
    gen.finish();

    let program = BroadcastProgram::generate(&paper_assignment(), 1000);
    let mut q = Group::new("schedule_queries");
    {
        let mut cursor = 0usize;
        let mut page = 0u32;
        q.bench("slots_until", || {
            cursor = (cursor + 97) % program.major_cycle();
            page = (page + 13) % 1000;
            program.slots_until(PageId(page), cursor)
        });
    }
    {
        let mut cursor = 0usize;
        let mut page = 0u32;
        q.bench("slots_until_present", || {
            cursor = (cursor + 97) % program.major_cycle();
            page = (page + 13) % 1000;
            program.slots_until_present(PageId(page), cursor)
        });
    }
    {
        let mut page = 0u32;
        q.bench("expected_slots", || {
            page = (page + 13) % 1000;
            program.expected_slots(PageId(page))
        });
    }
    {
        let mut page = 0u32;
        q.bench("frequency", || {
            page = (page + 13) % 1000;
            program.frequency(PageId(page))
        });
    }
    q.finish();
}
