//! Criterion end-to-end benchmark: simulated broadcast slots per second

#![allow(missing_docs)] // criterion_group!/criterion_main! expand undocumented items
//! for each algorithm at a heavy load point (ThinkTimeRatio 100).

use bpp_core::{Algorithm, MeasurementProtocol, SystemConfig, World};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_20k_slots");
    g.sample_size(10);
    for algo in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::paper_default();
                cfg.algorithm = algo;
                cfg.think_time_ratio = 100.0;
                let proto = MeasurementProtocol::quick();
                let mut engine = World::steady_state(&cfg, &proto).into_engine();
                engine.run_until(20_000.0);
                black_box(engine.dispatched())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
