//! End-to-end benchmark: simulated broadcast slots per second for each
//! algorithm at a heavy load point (ThinkTimeRatio 100).

#![allow(missing_docs)]

use bpp_bench::Group;
use bpp_core::{Algorithm, MeasurementProtocol, SystemConfig, World};

fn main() {
    let mut g = Group::new("simulate_20k_slots");
    g.sample_size(10);
    for algo in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
        g.bench(algo.name(), || {
            let mut cfg = SystemConfig::paper_default();
            cfg.algorithm = algo;
            cfg.think_time_ratio = 100.0;
            let proto = MeasurementProtocol::quick();
            let mut engine = World::steady_state(&cfg, &proto).into_engine();
            engine.run_until(20_000.0);
            engine.dispatched()
        });
    }
    g.finish();
}
