//! Microbenchmarks for the observability primitives (counter increment,
//! time-weighted timeline update, trace-ring push) and the end-to-end
//! overhead of running a simulation with the obs layer on vs. off.

#![allow(missing_docs)]

use bpp_core::{Algorithm, MeasurementProtocol, SystemConfig, World};
use bpp_obs::{Metrics, Timeline, TraceRing};
use std::hint::black_box;

use bpp_bench::Group;

fn sim_slots(obs: bool) -> u64 {
    let mut cfg = SystemConfig::small();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.5;
    cfg.think_time_ratio = 10.0;
    cfg.obs.enabled = obs;
    let proto = MeasurementProtocol::quick();
    let mut engine = World::steady_state(&cfg, &proto).into_engine();
    engine.run_until(5_000.0);
    engine.dispatched()
}

fn main() {
    let mut g = Group::new("obs");
    g.sample_size(10);

    {
        // The wired hot path: handle interned once, then a plain array add.
        let mut m = Metrics::new();
        let h = m.counter_handle("engine.dispatch.slot");
        g.bench("metrics_inc", move || {
            m.inc_handle(black_box(h));
        });
    }
    {
        // The by-name convenience path (the pre-interning cost), kept for
        // comparison against the handle path above.
        let mut m = Metrics::new();
        g.bench("metrics_inc_by_name", || {
            m.inc(black_box("engine.dispatch.slot"));
            m.counter("engine.dispatch.slot")
        });
    }
    {
        let mut tl = Timeline::new(100.0);
        let mut t = 0.0_f64;
        g.bench("timeline_update", || {
            t += 1.0;
            tl.update(t, black_box(t % 17.0));
            tl.stride()
        });
    }
    {
        let mut ring = TraceRing::new(256);
        let mut t = 0.0_f64;
        g.bench("trace_push", || {
            t += 1.0;
            ring.push(t, "retry_resend", black_box(t));
            ring.len()
        });
    }

    g.bench("sim_5k_obs_off", || sim_slots(false));
    g.bench("sim_5k_obs_on", || sim_slots(true));

    g.finish();
}
