//! Microbenchmarks for the cache policies under a Zipf trace.

#![allow(missing_docs)]

use bpp_bench::Group;
use bpp_cache::{LfuCache, LruCache, ReplacementPolicy, StaticScoreCache};
use bpp_sim::rng::Xoshiro256pp;
use bpp_workload::{AliasTable, Zipf};

const DB: usize = 1000;
const CAP: usize = 100;
const TRACE: usize = 10_000;

fn zipf_trace() -> Vec<usize> {
    let z = Zipf::new(DB, 0.95);
    let t = AliasTable::new(z.probs());
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    (0..TRACE).map(|_| t.sample(&mut rng)).collect()
}

fn run_trace<P: ReplacementPolicy>(cache: &mut P, trace: &[usize]) -> u64 {
    let mut hits = 0u64;
    for &item in trace {
        if cache.lookup(item) {
            hits += 1;
        } else {
            cache.insert(item);
        }
    }
    hits
}

fn main() {
    let trace = zipf_trace();
    let z = Zipf::new(DB, 0.95);
    let freqs: Vec<usize> = (0..DB)
        .map(|i| {
            if i < 100 {
                3
            } else if i < 500 {
                2
            } else {
                1
            }
        })
        .collect();
    let mut g = Group::new("cache_trace_10k");
    g.bench("pix", || {
        let mut cache = StaticScoreCache::pix(CAP, z.probs(), &freqs);
        run_trace(&mut cache, &trace)
    });
    g.bench("p", || {
        let mut cache = StaticScoreCache::p(CAP, z.probs());
        run_trace(&mut cache, &trace)
    });
    g.bench("lru", || {
        let mut cache = LruCache::new(CAP);
        run_trace(&mut cache, &trace)
    });
    g.bench("lfu", || {
        let mut cache = LfuCache::new(CAP);
        run_trace(&mut cache, &trace)
    });
    g.finish();
}
