//! Criterion microbenchmarks for the cache policies under a Zipf trace.

#![allow(missing_docs)] // criterion_group!/criterion_main! expand undocumented items

use bpp_cache::{LfuCache, LruCache, ReplacementPolicy, StaticScoreCache};
use bpp_workload::{AliasTable, Zipf};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const DB: usize = 1000;
const CAP: usize = 100;
const TRACE: usize = 10_000;

fn zipf_trace() -> Vec<usize> {
    let z = Zipf::new(DB, 0.95);
    let t = AliasTable::new(z.probs());
    let mut rng = SmallRng::seed_from_u64(42);
    (0..TRACE).map(|_| t.sample(&mut rng)).collect()
}

fn run_trace<P: ReplacementPolicy>(cache: &mut P, trace: &[usize]) -> u64 {
    let mut hits = 0u64;
    for &item in trace {
        if cache.lookup(item) {
            hits += 1;
        } else {
            cache.insert(item);
        }
    }
    hits
}

fn bench_policies(c: &mut Criterion) {
    let trace = zipf_trace();
    let z = Zipf::new(DB, 0.95);
    let freqs: Vec<usize> = (0..DB).map(|i| if i < 100 { 3 } else if i < 500 { 2 } else { 1 }).collect();
    let mut g = c.benchmark_group("cache_trace_10k");
    g.bench_function("pix", |b| {
        b.iter(|| {
            let mut cache = StaticScoreCache::pix(CAP, z.probs(), &freqs);
            black_box(run_trace(&mut cache, &trace))
        });
    });
    g.bench_function("p", |b| {
        b.iter(|| {
            let mut cache = StaticScoreCache::p(CAP, z.probs());
            black_box(run_trace(&mut cache, &trace))
        });
    });
    g.bench_function("lru", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(CAP);
            black_box(run_trace(&mut cache, &trace))
        });
    });
    g.bench_function("lfu", |b| {
        b.iter(|| {
            let mut cache = LfuCache::new(CAP);
            black_box(run_trace(&mut cache, &trace))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
