//! Property-based tests for broadcast program construction.

use bpp_broadcast::{
    assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, PageId, Slot,
};
use proptest::prelude::*;

/// Strategy: a small random multi-disk spec with non-increasing frequencies.
fn spec_strategy() -> impl Strategy<Value = DiskSpec> {
    (1usize..5)
        .prop_flat_map(|ndisks| {
            (
                prop::collection::vec(1usize..60, ndisks),
                prop::collection::vec(1u32..7, ndisks),
            )
        })
        .prop_map(|(sizes, mut freqs)| {
            freqs.sort_unstable_by(|a, b| b.cmp(a));
            DiskSpec::new(sizes, freqs)
        })
}

proptest! {
    #[test]
    fn every_page_appears_exactly_rel_freq_per_rel_times(spec in spec_strategy()) {
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        // Count appearances per page and compare with the spec frequency.
        let mut counts = vec![0usize; n];
        for s in p.slots() {
            if let Slot::Page(pg) = s {
                counts[pg.index()] += 1;
            }
        }
        let mut cursor = 0usize;
        for (d, &size) in spec.sizes.iter().enumerate() {
            for (i, &count) in counts.iter().enumerate().skip(cursor).take(size) {
                prop_assert_eq!(count, spec.rel_freqs[d] as usize,
                    "page {} on disk {}", i, d);
            }
            cursor += size;
        }
    }

    #[test]
    fn major_cycle_is_minor_times_chunks(spec in spec_strategy()) {
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        prop_assert_eq!(p.major_cycle(), p.minor_cycle() * p.num_minor_cycles());
        // Padding is bounded by one chunk per disk per minor cycle.
        prop_assert!(p.empty_slots() < p.major_cycle().max(1));
    }

    #[test]
    fn slots_until_finds_a_real_occurrence(spec in spec_strategy(), cursor in 0usize..10_000) {
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        let m = p.major_cycle();
        for i in (0..n).step_by(7.max(n / 13)) {
            let pid = PageId(i as u32);
            let d = p.slots_until(pid, cursor).expect("page is broadcast");
            prop_assert!(d >= 1 && d <= m);
            prop_assert_eq!(p.slot((cursor + d - 1) % m), Slot::Page(pid));
            // No earlier occurrence.
            for k in 0..d - 1 {
                prop_assert_ne!(p.slot((cursor + k) % m), Slot::Page(pid));
            }
        }
    }

    #[test]
    fn chopping_never_loses_pages(spec in spec_strategy(), chop_frac in 0.0f64..1.2) {
        let n = spec.total_pages();
        let mut a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let chop = ((n as f64) * chop_frac) as usize;
        let removed = a.chop(chop);
        prop_assert_eq!(removed.len(), chop.min(n));
        prop_assert_eq!(a.broadcast_pages() + removed.len(), n);
        // Broadcast + non-broadcast partitions the database.
        let p = BroadcastProgram::generate(&a, n);
        for pid in removed {
            prop_assert!(!p.contains(pid));
        }
        prop_assert_eq!(p.distinct_pages(), n - chop.min(n));
    }

    #[test]
    fn expected_slots_within_cycle_bounds(spec in spec_strategy()) {
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        for i in 0..n {
            let e = p.expected_slots(PageId(i as u32)).unwrap();
            prop_assert!(e >= 0.5 && e <= p.major_cycle() as f64);
        }
    }

    #[test]
    fn offset_preserves_page_set(cache in 0usize..100) {
        let spec = DiskSpec::paper_default();
        let a = Assignment::with_offset(&identity_ranking(1000), &spec, cache);
        let mut seen = vec![false; 1000];
        for d in a.disks() {
            for p in d {
                prop_assert!(!seen[p.index()]);
                seen[p.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }
}
