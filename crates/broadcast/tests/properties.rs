//! Property tests for broadcast program construction, driven by
//! deterministic generator loops: case `i` derives its inputs from
//! `stream_rng(SEED, i)`, so every run (and every failure) is reproducible
//! from the case index alone.

// bpp-lint: allow-file(D1): property cases derive per-case RNG streams from the case index
use bpp_broadcast::{
    assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, PageId, Slot,
};
use bpp_sim::rng::{stream_rng, Rng};

const SEED: u64 = 0x5EED_B0DC;
const CASES: u64 = 96;

/// Generator: a small random multi-disk spec with non-increasing
/// frequencies (mirrors the paper's fastest-to-slowest ordering).
fn gen_spec<R: Rng + ?Sized>(rng: &mut R) -> DiskSpec {
    let ndisks = 1 + rng.random_range(0..4);
    let sizes: Vec<usize> = (0..ndisks).map(|_| 1 + rng.random_range(0..59)).collect();
    let mut freqs: Vec<u32> = (0..ndisks)
        .map(|_| 1 + rng.random_range(0..6) as u32)
        .collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    DiskSpec::new(sizes, freqs)
}

#[test]
fn every_page_appears_exactly_rel_freq_per_rel_times() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let spec = gen_spec(&mut rng);
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        // Count appearances per page and compare with the spec frequency.
        let mut counts = vec![0usize; n];
        for s in p.slots() {
            if let Slot::Page(pg) = s {
                counts[pg.index()] += 1;
            }
        }
        let mut cursor = 0usize;
        for (d, &size) in spec.sizes.iter().enumerate() {
            for (i, &count) in counts.iter().enumerate().skip(cursor).take(size) {
                assert_eq!(
                    count, spec.rel_freqs[d] as usize,
                    "case {case}: page {i} on disk {d}"
                );
            }
            cursor += size;
        }
    }
}

#[test]
fn major_cycle_is_minor_times_chunks() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let spec = gen_spec(&mut rng);
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        assert_eq!(p.major_cycle(), p.minor_cycle() * p.num_minor_cycles());
        // Padding is bounded by one chunk per disk per minor cycle.
        assert!(p.empty_slots() < p.major_cycle().max(1), "case {case}");
    }
}

#[test]
fn slots_until_finds_a_real_occurrence() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let spec = gen_spec(&mut rng);
        let cursor = rng.random_range(0..10_000);
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        let m = p.major_cycle();
        for i in (0..n).step_by(7.max(n / 13)) {
            let pid = PageId(i as u32);
            let d = p.slots_until_present(pid, cursor);
            assert!(d >= 1 && d <= m, "case {case}");
            assert_eq!(p.slot((cursor + d - 1) % m), Slot::Page(pid), "case {case}");
            // No earlier occurrence.
            for k in 0..d - 1 {
                assert_ne!(p.slot((cursor + k) % m), Slot::Page(pid), "case {case}");
            }
        }
    }
}

#[test]
fn chopping_never_loses_pages() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let spec = gen_spec(&mut rng);
        let chop_frac = rng.random::<f64>() * 1.2;
        let n = spec.total_pages();
        let mut a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let chop = ((n as f64) * chop_frac) as usize;
        let removed = a.chop(chop);
        assert_eq!(removed.len(), chop.min(n), "case {case}");
        assert_eq!(a.broadcast_pages() + removed.len(), n, "case {case}");
        // Broadcast + non-broadcast partitions the database.
        let p = BroadcastProgram::generate(&a, n);
        for pid in removed {
            assert!(!p.contains(pid), "case {case}: {pid} still broadcast");
        }
        assert_eq!(p.distinct_pages(), n - chop.min(n), "case {case}");
    }
}

#[test]
fn expected_slots_within_cycle_bounds() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let spec = gen_spec(&mut rng);
        let n = spec.total_pages();
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let p = BroadcastProgram::generate(&a, n);
        for i in 0..n {
            let e = p.expected_slots(PageId(i as u32)).unwrap();
            assert!(e >= 0.5 && e <= p.major_cycle() as f64, "case {case}");
        }
    }
}

#[test]
fn offset_preserves_page_set() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let cache = rng.random_range(0..100);
        let spec = DiskSpec::paper_default();
        let a = Assignment::with_offset(&identity_ranking(1000), &spec, cache);
        let mut seen = vec![false; 1000];
        for d in a.disks() {
            for p in d {
                assert!(!seen[p.index()], "case {case}: {p} assigned twice");
                seen[p.index()] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "case {case}: page missing");
    }
}
