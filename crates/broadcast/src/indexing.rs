//! (1, m) indexing on air — the power-conservation extension.
//!
//! The paper's footnote on predictability points at \[Imie94b\] ("Energy
//! Efficient Indexing on Air"): a mobile client that must *listen* to every
//! slot until its page arrives burns its battery in receive mode. If the
//! server interleaves `m` copies of an index into each broadcast cycle,
//! clients can doze, wake for the next index, learn exactly when their page
//! will fly by, and doze again — trading a slightly longer cycle (the index
//! slots are overhead) for a drastically shorter *tuning time*.
//!
//! The protocol modelled here is the classic (1, m) scheme:
//!
//! 1. tune in at a random instant; listen to one slot (every slot carries a
//!    pointer to the next index segment);
//! 2. doze until the next index segment; listen to all `index_size` slots;
//! 3. doze until the announced slot of the wanted page; listen to it.
//!
//! *Access time* is wall-clock slots from arrival to delivery; *tuning
//! time* is the number of slots spent listening (1 + index + 1). The
//! optimal replication factor balances index overhead against the wait for
//! the next index: `m* = √(data/index)`.

use crate::program::{BroadcastProgram, Slot};
use crate::PageId;
use bpp_sim::approx::exactly_zero;

/// A broadcast cycle with `m` interleaved index segments.
#[derive(Debug, Clone)]
pub struct IndexedProgram {
    /// The full cycle: data slots with index segments spliced in.
    slots: Vec<IndexedSlot>,
    /// Starting offset of every index segment within the cycle.
    index_starts: Vec<usize>,
    index_size: usize,
    m: usize,
    db_size: usize,
}

/// One slot of an indexed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexedSlot {
    /// A data (or padding) slot of the underlying program.
    Data(Slot),
    /// One slot of an index segment.
    Index,
}

impl IndexedProgram {
    /// Interleave `m ≥ 1` index segments of `index_size ≥ 1` slots into the
    /// data program, one at the start of each of `m` equal data chunks.
    ///
    /// # Panics
    /// If the program is empty or the parameters are zero.
    pub fn new(program: &BroadcastProgram, index_size: usize, m: usize) -> Self {
        assert!(program.major_cycle() > 0, "cannot index an empty program");
        assert!(index_size >= 1 && m >= 1, "index_size and m must be >= 1");
        let data = program.major_cycle();
        let chunk = data.div_ceil(m);
        let mut slots = Vec::with_capacity(data + m * index_size);
        let mut index_starts = Vec::with_capacity(m);
        let mut emitted = 0usize;
        while emitted < data {
            index_starts.push(slots.len());
            slots.extend(std::iter::repeat_n(IndexedSlot::Index, index_size));
            let take = chunk.min(data - emitted);
            for i in emitted..emitted + take {
                slots.push(IndexedSlot::Data(program.slot(i)));
            }
            emitted += take;
        }
        IndexedProgram {
            slots,
            index_starts,
            index_size,
            m,
            db_size: program.db_size(),
        }
    }

    /// Total cycle length including index overhead.
    pub fn total_cycle(&self) -> usize {
        self.slots.len()
    }

    /// The replication factor actually used (≤ the requested `m` when the
    /// data cycle is shorter than `m` chunks).
    pub fn m(&self) -> usize {
        self.index_starts.len().min(self.m)
    }

    /// Slots of index overhead per cycle.
    pub fn index_overhead(&self) -> usize {
        self.index_starts.len() * self.index_size
    }

    /// The slot at position `i` of the cycle.
    pub fn slot(&self, i: usize) -> IndexedSlot {
        self.slots[i]
    }

    /// All slots of the indexed cycle in order.
    pub fn slots(&self) -> &[IndexedSlot] {
        &self.slots
    }

    /// Starting offsets of the index segments within the cycle, in
    /// ascending order. This is the offset table bpp-verify rule V3 audits
    /// for index coherence.
    pub fn index_starts(&self) -> &[usize] {
        &self.index_starts
    }

    /// Length of each index segment in slots.
    pub fn index_size(&self) -> usize {
        self.index_size
    }

    /// Expected access and tuning times (in slots) for the (1, m) probe
    /// protocol, averaged over a uniformly random arrival instant, for a
    /// client whose page interest follows `probs` (one weight per page;
    /// pages not in the cycle are skipped and their mass ignored).
    ///
    /// Returns `(access_time, tuning_time)`.
    pub fn expected_times(&self, probs: &[f64]) -> (f64, f64) {
        assert_eq!(probs.len(), self.db_size, "one probability per page");
        let c = self.slots.len();
        // next_index[i] = distance from slot i to the start of the next
        // index segment (0 when i is inside/starting one... we want the
        // next segment *start* at or after i).
        let mut next_index = vec![0usize; c];
        {
            let mut starts = self.index_starts.clone();
            starts.push(self.index_starts[0] + c);
            let mut k = 0usize;
            for (i, ni) in next_index.iter_mut().enumerate() {
                while starts[k] < i {
                    k += 1;
                }
                *ni = starts[k] - i;
            }
        }
        // Occurrences of each page in the indexed cycle.
        let mut occurrences: Vec<Vec<usize>> = vec![Vec::new(); self.db_size];
        for (i, s) in self.slots.iter().enumerate() {
            if let IndexedSlot::Data(Slot::Page(p)) = s {
                occurrences[p.index()].push(i);
            }
        }

        let mut total_mass = 0.0f64;
        let mut access = 0.0f64;
        let cycle = c as f64;
        for (page, occ) in occurrences.iter().enumerate() {
            let w = probs[page];
            if occ.is_empty() || exactly_zero(w) {
                continue;
            }
            total_mass += w;
            // Average over arrival slots: probe slot a (1 slot), doze to
            // next index start, read index, then wait for the first
            // occurrence of the page after the index ends.
            let mut sum = 0.0f64;
            for a in 0..c {
                let probe_end = a + 1;
                let idx_start = probe_end + next_index[probe_end % c];
                let idx_end = idx_start + self.index_size;
                let target = occ
                    .iter()
                    .map(|&o| {
                        let mut t = o;
                        while t < idx_end {
                            t += c;
                        }
                        t
                    })
                    .min()
                    // bpp-lint: allow(D3): guarded by the occ.is_empty() continue above
                    .expect("non-empty occurrences");
                sum += (target + 1 - a) as f64;
            }
            access += w * sum / cycle;
        }
        assert!(total_mass > 0.0, "no broadcast page has positive weight");
        let tuning = 1.0 + self.index_size as f64 + 1.0;
        (access / total_mass, tuning)
    }

    /// Expected times for the *unindexed* baseline: the client listens
    /// continuously, so tuning time equals access time.
    pub fn baseline_times(program: &BroadcastProgram, probs: &[f64]) -> (f64, f64) {
        assert_eq!(probs.len(), program.db_size());
        let mut total = 0.0;
        let mut mass = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            if exactly_zero(p) {
                continue;
            }
            if let Some(d) = program.expected_slots(PageId(i as u32)) {
                total += p * d;
                mass += p;
            }
        }
        let t = total / mass;
        (t, t)
    }
}

/// The square-root rule for the optimal replication factor:
/// `m* = √(data_cycle / index_size)`, clamped to at least 1.
pub fn optimal_m(data_cycle: usize, index_size: usize) -> usize {
    assert!(data_cycle >= 1 && index_size >= 1);
    ((data_cycle as f64 / index_size as f64).sqrt().round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{identity_ranking, Assignment, DiskSpec};

    fn flat_program(n: usize) -> BroadcastProgram {
        let spec = DiskSpec::flat(n);
        BroadcastProgram::generate(&Assignment::from_ranking(&identity_ranking(n), &spec), n)
    }

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    #[test]
    fn cycle_length_includes_index_overhead() {
        let p = flat_program(100);
        let ip = IndexedProgram::new(&p, 5, 4);
        assert_eq!(ip.total_cycle(), 100 + 4 * 5);
        assert_eq!(ip.index_overhead(), 20);
        assert_eq!(ip.m(), 4);
    }

    #[test]
    fn all_data_slots_survive_interleaving() {
        let p = flat_program(60);
        let ip = IndexedProgram::new(&p, 3, 5);
        let data: Vec<IndexedSlot> = (0..ip.total_cycle())
            .map(|i| ip.slot(i))
            .filter(|s| matches!(s, IndexedSlot::Data(_)))
            .collect();
        assert_eq!(data.len(), 60);
    }

    #[test]
    fn tuning_time_is_tiny_compared_to_access() {
        let p = flat_program(500);
        let probs = uniform(500);
        let ip = IndexedProgram::new(&p, 10, optimal_m(500, 10));
        let (access, tuning) = ip.expected_times(&probs);
        assert!(tuning < 15.0, "tuning {tuning}");
        assert!(access > 200.0, "access {access}");
        // The unindexed client listens the whole wait.
        let (b_access, b_tuning) = IndexedProgram::baseline_times(&p, &probs);
        assert_eq!(b_access, b_tuning);
        assert!(tuning < b_tuning / 10.0);
    }

    #[test]
    fn indexing_costs_bounded_access_time_overhead() {
        // Access time grows by the index overhead share, not more.
        let p = flat_program(400);
        let probs = uniform(400);
        let (base_access, _) = IndexedProgram::baseline_times(&p, &probs);
        let ip = IndexedProgram::new(&p, 8, optimal_m(400, 8));
        let (access, _) = ip.expected_times(&probs);
        let overhead = ip.index_overhead() as f64 / 400.0;
        assert!(
            access < base_access * (1.0 + overhead) + ip.total_cycle() as f64 / ip.m() as f64,
            "access {access} vs base {base_access}"
        );
    }

    #[test]
    fn sqrt_rule_is_near_the_empirical_optimum() {
        let p = flat_program(300);
        let probs = uniform(300);
        let index = 12usize;
        let best_m = (1..=12)
            .min_by(|&a, &b| {
                let fa = IndexedProgram::new(&p, index, a).expected_times(&probs).0;
                let fb = IndexedProgram::new(&p, index, b).expected_times(&probs).0;
                fa.partial_cmp(&fb).unwrap()
            })
            .unwrap();
        let rule = optimal_m(300, 12); // 5
        assert!(
            (best_m as i64 - rule as i64).abs() <= 1,
            "empirical {best_m} vs rule {rule}"
        );
    }

    #[test]
    fn multi_disk_program_can_be_indexed() {
        let spec = DiskSpec::new(vec![10, 40, 50], vec![3, 2, 1]);
        let prog = BroadcastProgram::generate(
            &Assignment::from_ranking(&identity_ranking(100), &spec),
            100,
        );
        let ip = IndexedProgram::new(&prog, 6, 8);
        let probs = uniform(100);
        let (access, tuning) = ip.expected_times(&probs);
        assert!(access.is_finite() && access > 0.0);
        assert!(tuning == 8.0);
    }

    #[test]
    fn m_larger_than_cycle_is_clamped() {
        let p = flat_program(4);
        let ip = IndexedProgram::new(&p, 1, 100);
        // One chunk per data slot at most.
        assert!(ip.m() <= 4);
        assert_eq!(ip.total_cycle(), 4 + ip.index_overhead());
    }

    #[test]
    #[should_panic(expected = "empty program")]
    fn empty_program_cannot_be_indexed() {
        let spec = DiskSpec::flat(2);
        let mut a = Assignment::from_ranking(&identity_ranking(2), &spec);
        a.chop(2);
        let p = BroadcastProgram::generate(&a, 2);
        IndexedProgram::new(&p, 1, 1);
    }
}
