//! Closed-form analysis of broadcast programs.
//!
//! Used by the analytic comparator (`bpp-core::analytic`) and by reports:
//! given a program and a per-page access probability vector, compute the
//! expected push response time without running the simulator. At Noise=0
//! with a warmed cache this matches the Pure-Push steady-state measurement,
//! which makes it a powerful cross-check on the event-driven machinery.

use crate::{BroadcastProgram, PageId};

/// Per-page expected push delays (in slots, inclusive of the delivery
/// slot). `None` entries are pull-only pages.
pub fn expected_delay_by_page(program: &BroadcastProgram) -> Vec<Option<f64>> {
    (0..program.db_size())
        .map(|i| program.expected_slots(PageId(i as u32)))
        .collect()
}

/// Aggregate analysis of a program against an access pattern.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Expected response time over all accesses, counting cache hits as 0
    /// and assuming the `cached` pages never reach the broadcast.
    pub expected_response: f64,
    /// Expected response time over broadcast-served misses only.
    pub expected_miss_response: f64,
    /// Probability mass served from the cache.
    pub cache_hit_mass: f64,
    /// Probability mass of pages that are neither cached nor broadcast
    /// (pull-only pages — the analytic push model cannot serve them).
    pub unserved_mass: f64,
}

/// Analyse `program` under `probs` (per-page access probabilities) with a
/// statically warmed cache holding `cached` pages.
///
/// # Panics
/// If `probs.len()` differs from the program's database size.
pub fn analyse(program: &BroadcastProgram, probs: &[f64], cached: &[PageId]) -> ProgramAnalysis {
    assert_eq!(probs.len(), program.db_size(), "probability vector size");
    let mut is_cached = vec![false; probs.len()];
    for p in cached {
        is_cached[p.index()] = true;
    }
    let mut hit_mass = 0.0;
    let mut unserved = 0.0;
    let mut weighted = 0.0;
    let mut miss_mass = 0.0;
    for (i, &pr) in probs.iter().enumerate() {
        if is_cached[i] {
            hit_mass += pr;
        } else {
            match program.expected_slots(PageId(i as u32)) {
                Some(d) => {
                    weighted += pr * d;
                    miss_mass += pr;
                }
                None => unserved += pr,
            }
        }
    }
    ProgramAnalysis {
        expected_response: weighted, // hits contribute 0
        expected_miss_response: if miss_mass > 0.0 {
            weighted / miss_mass
        } else {
            0.0
        },
        cache_hit_mass: hit_mass,
        unserved_mass: unserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{identity_ranking, Assignment, DiskSpec};

    #[test]
    fn uniform_flat_disk_matches_hand_calculation() {
        let spec = DiskSpec::flat(4);
        let a = Assignment::from_ranking(&identity_ranking(4), &spec);
        let p = BroadcastProgram::generate(&a, 4);
        let probs = [0.25; 4];
        let r = analyse(&p, &probs, &[]);
        // Every page waits mean of 1..=4 = 2.5 slots.
        assert!((r.expected_response - 2.5).abs() < 1e-12);
        assert!((r.expected_miss_response - 2.5).abs() < 1e-12);
        assert_eq!(r.cache_hit_mass, 0.0);
        assert_eq!(r.unserved_mass, 0.0);
    }

    #[test]
    fn caching_removes_mass_and_latency() {
        let spec = DiskSpec::flat(4);
        let a = Assignment::from_ranking(&identity_ranking(4), &spec);
        let p = BroadcastProgram::generate(&a, 4);
        let probs = [0.7, 0.1, 0.1, 0.1];
        let r = analyse(&p, &probs, &[PageId(0)]);
        assert!((r.cache_hit_mass - 0.7).abs() < 1e-12);
        assert!((r.expected_response - 0.3 * 2.5).abs() < 1e-12);
        assert!((r.expected_miss_response - 2.5).abs() < 1e-12);
    }

    #[test]
    fn chopped_pages_are_unserved() {
        let spec = DiskSpec::new(vec![2, 2], vec![2, 1]);
        let mut a = Assignment::from_ranking(&identity_ranking(4), &spec);
        a.chop(1); // removes the coldest page (3)
        let p = BroadcastProgram::generate(&a, 4);
        let probs = [0.4, 0.3, 0.2, 0.1];
        let r = analyse(&p, &probs, &[]);
        assert!((r.unserved_mass - 0.1).abs() < 1e-12);
    }

    #[test]
    fn delays_vector_shape() {
        let spec = DiskSpec::paper_default();
        let a = Assignment::with_offset(&identity_ranking(1000), &spec, 100);
        let p = BroadcastProgram::generate(&a, 1000);
        let d = expected_delay_by_page(&p);
        assert_eq!(d.len(), 1000);
        assert!(d.iter().all(|x| x.is_some()));
    }
}
