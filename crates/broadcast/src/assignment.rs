//! Assignment of pages to broadcast disks.
//!
//! The server knows the aggregate client access pattern (the Virtual
//! Client's ranking) and partitions the hottest pages onto the fastest
//! disks. Two transforms modify the naive partition:
//!
//! * **Offset** — hot pages end up cached at every steady-state client, so
//!   broadcasting them frequently is wasted bandwidth. The offset transform
//!   moves the `cache_size` hottest pages to the *slowest* disk and shifts
//!   every colder page one disk "faster".
//! * **Chop** — Experiment 3 of the paper removes pages from the broadcast
//!   altogether (they become pull-only), emptying the slowest disk first.

use crate::PageId;
use bpp_json::{field, FromJson, Json, JsonError, ToJson};

/// Shape of a multi-disk broadcast: per-disk sizes and relative spin speeds.
///
/// Disk 0 is the fastest; frequencies are relative to the slowest disk
/// (which conventionally has `rel_freq = 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskSpec {
    /// Number of pages on each disk, fastest disk first.
    pub sizes: Vec<usize>,
    /// Relative broadcast frequency of each disk (same length as `sizes`).
    pub rel_freqs: Vec<u32>,
}

impl ToJson for DiskSpec {
    fn to_json(&self) -> Json {
        Json::object([
            ("sizes", self.sizes.to_json()),
            ("rel_freqs", self.rel_freqs.to_json()),
        ])
    }
}

impl FromJson for DiskSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(DiskSpec {
            sizes: field(v, "sizes")?,
            rel_freqs: field(v, "rel_freqs")?,
        })
    }
}

impl DiskSpec {
    /// Create and validate a spec.
    ///
    /// # Panics
    /// If lengths differ, the spec is empty, any frequency is zero, or the
    /// frequencies are not non-increasing (faster disks must come first).
    pub fn new(sizes: Vec<usize>, rel_freqs: Vec<u32>) -> Self {
        assert_eq!(sizes.len(), rel_freqs.len(), "sizes/freqs length mismatch");
        assert!(!sizes.is_empty(), "need at least one disk");
        assert!(
            rel_freqs.iter().all(|&f| f > 0),
            "frequencies must be positive"
        );
        assert!(
            rel_freqs.windows(2).all(|w| w[0] >= w[1]),
            "disks must be ordered fastest to slowest"
        );
        DiskSpec { sizes, rel_freqs }
    }

    /// The paper's base configuration: three disks of 100/400/500 pages at
    /// relative speeds 3:2:1.
    pub fn paper_default() -> Self {
        DiskSpec::new(vec![100, 400, 500], vec![3, 2, 1])
    }

    /// Single flat disk holding `n` pages (the Datacycle/BCIS layout).
    pub fn flat(n: usize) -> Self {
        DiskSpec::new(vec![n], vec![1])
    }

    /// Total number of pages across all disks.
    pub fn total_pages(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Number of disks.
    pub fn num_disks(&self) -> usize {
        self.sizes.len()
    }
}

/// A concrete assignment: the list of pages on each disk plus the pages that
/// were removed from the broadcast (pull-only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    disks: Vec<Vec<PageId>>,
    rel_freqs: Vec<u32>,
    non_broadcast: Vec<PageId>,
}

impl Assignment {
    /// Assign `ranked` pages (hottest first) to disks in rank order: the
    /// `sizes[0]` hottest pages to the fastest disk, and so on.
    ///
    /// # Panics
    /// If the ranking does not contain exactly `spec.total_pages()` pages.
    pub fn from_ranking(ranked: &[PageId], spec: &DiskSpec) -> Self {
        assert_eq!(
            ranked.len(),
            spec.total_pages(),
            "ranking must cover exactly the spec's pages"
        );
        let mut disks = Vec::with_capacity(spec.num_disks());
        let mut cursor = 0usize;
        for &size in &spec.sizes {
            disks.push(ranked[cursor..cursor + size].to_vec());
            cursor += size;
        }
        Assignment {
            disks,
            rel_freqs: spec.rel_freqs.clone(),
            non_broadcast: Vec::new(),
        }
    }

    /// Assign with the *Offset* transform: the `cache_size` hottest pages go
    /// to the slowest disk; every colder page shifts toward faster disks.
    ///
    /// Within every disk, pages are stored hottest-first; on the slowest
    /// disk the (universally cached) hot block comes first, then the cold
    /// pages. A subsequent [`chop`](Assignment::chop) therefore removes
    /// genuinely cold pages before it ever touches the hot ones.
    ///
    /// # Panics
    /// If `cache_size` exceeds the slowest disk's size or the ranking does
    /// not match the spec.
    pub fn with_offset(ranked: &[PageId], spec: &DiskSpec, cache_size: usize) -> Self {
        assert_eq!(ranked.len(), spec.total_pages());
        let slowest = spec.num_disks() - 1;
        assert!(
            cache_size <= spec.sizes[slowest],
            "offset ({cache_size}) larger than slowest disk ({})",
            spec.sizes[slowest]
        );
        let (hot, cold) = ranked.split_at(cache_size);
        let mut disks = Vec::with_capacity(spec.num_disks());
        let mut cursor = 0usize;
        for (i, &size) in spec.sizes.iter().enumerate() {
            let take = if i == slowest {
                size - cache_size
            } else {
                size
            };
            let mut disk = Vec::with_capacity(size);
            if i == slowest {
                disk.extend_from_slice(hot);
            }
            disk.extend_from_slice(&cold[cursor..cursor + take]);
            cursor += take;
            disks.push(disk);
        }
        Assignment {
            disks,
            rel_freqs: spec.rel_freqs.clone(),
            non_broadcast: Vec::new(),
        }
    }

    /// Remove `n` pages from the broadcast: slowest disk first, and within a
    /// disk the coldest pages first (disks store pages hottest-first, so
    /// removal pops from the back). Removed pages become pull-only.
    ///
    /// Returns the removed pages, coldest first. Removing more pages than
    /// exist on the broadcast removes everything.
    pub fn chop(&mut self, mut n: usize) -> Vec<PageId> {
        let mut removed = Vec::new();
        for disk in self.disks.iter_mut().rev() {
            if n == 0 {
                break;
            }
            let take = n.min(disk.len());
            removed.extend(disk.drain(disk.len() - take..).rev());
            n -= take;
        }
        self.non_broadcast.extend_from_slice(&removed);
        removed
    }

    /// Pages per disk, fastest first.
    pub fn disks(&self) -> &[Vec<PageId>] {
        &self.disks
    }

    /// Relative frequencies, fastest first.
    pub fn rel_freqs(&self) -> &[u32] {
        &self.rel_freqs
    }

    /// Pages removed from the broadcast (pull-only).
    pub fn non_broadcast(&self) -> &[PageId] {
        &self.non_broadcast
    }

    /// Number of pages still on the broadcast.
    pub fn broadcast_pages(&self) -> usize {
        self.disks.iter().map(Vec::len).sum()
    }
}

/// Convenience: the identity ranking `0..n` as `PageId`s (the Virtual
/// Client's pattern ranks page `r` at position `r`).
pub fn identity_ranking(n: usize) -> Vec<PageId> {
    (0..n as u32).map(PageId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(n: usize) -> Vec<PageId> {
        identity_ranking(n)
    }

    #[test]
    fn paper_spec_shape() {
        let s = DiskSpec::paper_default();
        assert_eq!(s.total_pages(), 1000);
        assert_eq!(s.num_disks(), 3);
    }

    #[test]
    fn from_ranking_fills_fastest_first() {
        let spec = DiskSpec::new(vec![2, 3], vec![2, 1]);
        let a = Assignment::from_ranking(&ranked(5), &spec);
        assert_eq!(a.disks()[0], vec![PageId(0), PageId(1)]);
        assert_eq!(a.disks()[1], vec![PageId(2), PageId(3), PageId(4)]);
        assert!(a.non_broadcast().is_empty());
    }

    #[test]
    fn offset_moves_hot_pages_to_slowest_disk() {
        let spec = DiskSpec::paper_default();
        let a = Assignment::with_offset(&ranked(1000), &spec, 100);
        // Fastest disk: ranks 100..200.
        assert_eq!(a.disks()[0][0], PageId(100));
        assert_eq!(a.disks()[0][99], PageId(199));
        // Middle disk: ranks 200..600.
        assert_eq!(a.disks()[1][0], PageId(200));
        assert_eq!(a.disks()[1][399], PageId(599));
        // Slowest disk: hot ranks 0..100 then cold ranks 600..1000.
        assert_eq!(a.disks()[2][0], PageId(0));
        assert_eq!(a.disks()[2][99], PageId(99));
        assert_eq!(a.disks()[2][100], PageId(600));
        assert_eq!(a.disks()[2][499], PageId(999));
    }

    #[test]
    fn offset_zero_equals_plain_ranking() {
        let spec = DiskSpec::new(vec![2, 2], vec![2, 1]);
        let a = Assignment::with_offset(&ranked(4), &spec, 0);
        let b = Assignment::from_ranking(&ranked(4), &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn every_page_lands_on_exactly_one_disk() {
        let spec = DiskSpec::paper_default();
        let a = Assignment::with_offset(&ranked(1000), &spec, 100);
        let mut seen = vec![false; 1000];
        for disk in a.disks() {
            for p in disk {
                assert!(!seen[p.index()], "{p} assigned twice");
                seen[p.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chop_removes_coldest_from_slowest_disk_first() {
        let spec = DiskSpec::paper_default();
        let mut a = Assignment::with_offset(&ranked(1000), &spec, 100);
        let removed = a.chop(200);
        assert_eq!(removed.len(), 200);
        // Chopped pages come off coldest-first (ranks 999 down to 800).
        assert_eq!(removed[0], PageId(999));
        assert_eq!(removed[199], PageId(800));
        assert_eq!(a.broadcast_pages(), 800);
        assert_eq!(a.non_broadcast().len(), 200);
    }

    #[test]
    fn chop_through_a_whole_disk_spills_into_the_next() {
        let spec = DiskSpec::paper_default();
        let mut a = Assignment::with_offset(&ranked(1000), &spec, 100);
        let removed = a.chop(700);
        assert_eq!(removed.len(), 700);
        // Disk 3 (500 pages: ranks 0..100 + 600..1000) fully gone,
        // then 200 pages from the cold end of disk 2 (ranks 400..600).
        assert!(a.disks()[2].is_empty());
        assert_eq!(a.disks()[1].len(), 200);
        assert_eq!(a.broadcast_pages(), 300);
        assert_eq!(removed[500], PageId(599));
        assert_eq!(removed[699], PageId(400));
    }

    #[test]
    fn chop_more_than_everything_empties_the_broadcast() {
        let spec = DiskSpec::new(vec![2, 2], vec![2, 1]);
        let mut a = Assignment::from_ranking(&ranked(4), &spec);
        let removed = a.chop(100);
        assert_eq!(removed.len(), 4);
        assert_eq!(a.broadcast_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "fastest to slowest")]
    fn increasing_frequencies_panic() {
        DiskSpec::new(vec![1, 1], vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "larger than slowest disk")]
    fn oversized_offset_panics() {
        let spec = DiskSpec::new(vec![4, 2], vec![2, 1]);
        Assignment::with_offset(&ranked(6), &spec, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_spec_panics() {
        DiskSpec::new(vec![1, 2], vec![1]);
    }
}
