//! Broadcast program generation and schedule queries.
//!
//! The generator implements the \[Acha95a\] interleaving algorithm. For the
//! paper's base configuration (disks 100/400/500 at 3:2:1) it produces a
//! major cycle of 1608 slots: `max_chunks = lcm(3,2,1) = 6` minor cycles of
//! `50 + 134 + 84` slots, 8 of which are padding.

use crate::{Assignment, PageId};

/// One slot of the broadcast schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Broadcast of a page.
    Page(PageId),
    /// Padding — the disk's pages did not divide evenly into chunks.
    Empty,
}

/// A generated periodic broadcast program.
///
/// The program is a flat sequence of [`Slot`]s (the *major cycle*) plus a
/// per-page occurrence index for O(log f) next-arrival queries.
#[derive(Debug, Clone)]
pub struct BroadcastProgram {
    slots: Vec<Slot>,
    /// occurrences[p] = sorted slot indexes of page p within the major
    /// cycle; empty for pages not on the broadcast. Indexed by PageId.
    occurrences: Vec<Vec<u32>>,
    /// disk_of[i] = original disk index (into the assignment's disk list)
    /// whose chunk produced slot `i` — padding slots included, since they
    /// are bandwidth charged to that disk.
    disk_of: Vec<u32>,
    minor_cycle: usize,
    num_minor_cycles: usize,
    db_size: usize,
}

impl BroadcastProgram {
    /// Generate the program for an [`Assignment`].
    ///
    /// `db_size` is the total number of pages in the database (broadcast or
    /// not); it sizes the occurrence index so that queries about pull-only
    /// pages are valid and answer "never".
    ///
    /// An assignment whose disks are all empty yields an empty program
    /// (Pure-Pull uses this degenerate case).
    pub fn generate(assignment: &Assignment, db_size: usize) -> Self {
        let live: Vec<(usize, &Vec<PageId>)> = assignment
            .disks()
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .collect();
        if live.is_empty() {
            return BroadcastProgram {
                slots: Vec::new(),
                occurrences: vec![Vec::new(); db_size],
                disk_of: Vec::new(),
                minor_cycle: 0,
                num_minor_cycles: 0,
                db_size,
            };
        }

        let freqs: Vec<u64> = live
            .iter()
            .map(|&(i, _)| u64::from(assignment.rel_freqs()[i]))
            .collect();
        let max_chunks = freqs.iter().copied().fold(1u64, lcm) as usize;
        // Per live disk: number of chunks and chunk size (ceil division).
        let num_chunks: Vec<usize> = freqs.iter().map(|&f| max_chunks / f as usize).collect();
        let chunk_sizes: Vec<usize> = live
            .iter()
            .zip(&num_chunks)
            .map(|(&(_, d), &nc)| d.len().div_ceil(nc))
            .collect();

        let minor_cycle: usize = chunk_sizes.iter().sum();
        let major = minor_cycle * max_chunks;
        let mut slots = Vec::with_capacity(major);
        let mut disk_of = Vec::with_capacity(major);
        for minor in 0..max_chunks {
            for (k, &(orig, disk)) in live.iter().enumerate() {
                let chunk = minor % num_chunks[k];
                let base = chunk * chunk_sizes[k];
                for j in 0..chunk_sizes[k] {
                    let idx = base + j;
                    slots.push(if idx < disk.len() {
                        Slot::Page(disk[idx])
                    } else {
                        Slot::Empty
                    });
                    disk_of.push(orig as u32);
                }
            }
        }
        debug_assert_eq!(slots.len(), major);

        let mut occurrences = vec![Vec::new(); db_size];
        for (i, slot) in slots.iter().enumerate() {
            if let Slot::Page(p) = slot {
                occurrences[p.index()].push(i as u32);
            }
        }
        BroadcastProgram {
            slots,
            occurrences,
            disk_of,
            minor_cycle,
            num_minor_cycles: max_chunks,
            db_size,
        }
    }

    /// Build a program directly from a slot sequence.
    ///
    /// This is the entry point for tools that construct (or deliberately
    /// corrupt) schedules outside [`generate`](Self::generate) — notably the
    /// `bpp-verify` mutation harness. The occurrence index is rebuilt from
    /// `slots`; `disk_of` maps each slot to the disk it is bandwidth-charged
    /// to and must be the same length as `slots`.
    ///
    /// # Panics
    ///
    /// Panics when `disk_of` and `slots` disagree in length, when the slot
    /// count is not `minor_cycle * num_minor_cycles`, or when a slot names a
    /// page outside `0..db_size`.
    pub fn from_slots(
        slots: Vec<Slot>,
        disk_of: Vec<u32>,
        minor_cycle: usize,
        num_minor_cycles: usize,
        db_size: usize,
    ) -> Self {
        assert_eq!(slots.len(), disk_of.len(), "one disk charge per slot");
        assert_eq!(
            slots.len(),
            minor_cycle * num_minor_cycles,
            "slot count must tile into minor cycles"
        );
        let mut occurrences = vec![Vec::new(); db_size];
        for (i, slot) in slots.iter().enumerate() {
            if let Slot::Page(p) = slot {
                assert!(p.index() < db_size, "{p} outside the {db_size}-page db");
                occurrences[p.index()].push(i as u32);
            }
        }
        BroadcastProgram {
            slots,
            occurrences,
            disk_of,
            minor_cycle,
            num_minor_cycles,
            db_size,
        }
    }

    /// Length of the major cycle in slots (push period). Zero for the empty
    /// (Pure-Pull) program.
    pub fn major_cycle(&self) -> usize {
        self.slots.len()
    }

    /// Length of one minor cycle in slots.
    pub fn minor_cycle(&self) -> usize {
        self.minor_cycle
    }

    /// Number of minor cycles per major cycle (`max_chunks`).
    pub fn num_minor_cycles(&self) -> usize {
        self.num_minor_cycles
    }

    /// Total number of database pages this program was generated for.
    pub fn db_size(&self) -> usize {
        self.db_size
    }

    /// Number of padding slots per major cycle.
    pub fn empty_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Empty))
            .count()
    }

    /// The slot at schedule position `idx` (must be `< major_cycle`).
    pub fn slot(&self, idx: usize) -> Slot {
        self.slots[idx]
    }

    /// All slots of the major cycle.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Original disk index (into the generating assignment's disk list) that
    /// produced slot `idx`. Padding slots are charged to the disk whose
    /// chunk they pad.
    pub fn disk_of_slot(&self, idx: usize) -> usize {
        self.disk_of[idx] as usize
    }

    /// Per-slot disk charge map (parallel to [`slots`](Self::slots)).
    pub fn disk_map(&self) -> &[u32] {
        &self.disk_of
    }

    /// True when `page` appears somewhere in the program.
    pub fn contains(&self, page: PageId) -> bool {
        !self.occurrences[page.index()].is_empty()
    }

    /// Broadcast frequency: occurrences of `page` per major cycle. This is
    /// the `x` of the PIX cache policy. Zero for pull-only pages.
    pub fn frequency(&self, page: PageId) -> usize {
        self.occurrences[page.index()].len()
    }

    /// Number of schedule slots from `cursor` (the next position the server
    /// will broadcast) until `page` appears, inclusive of the slot that
    /// carries the page. `None` when the page is not on the broadcast.
    ///
    /// A result of 1 means the very next push slot carries the page.
    pub fn slots_until(&self, page: PageId, cursor: usize) -> Option<usize> {
        let occ = &self.occurrences[page.index()];
        if occ.is_empty() {
            return None;
        }
        let m = self.slots.len();
        let cursor = cursor % m;
        let c = cursor as u32;
        // First occurrence >= cursor, else wrap to the first in the cycle.
        let dist = match occ.binary_search(&c) {
            Ok(_) => 0,
            Err(i) => {
                if i < occ.len() {
                    (occ[i] - c) as usize
                } else {
                    m - cursor + occ[0] as usize
                }
            }
        };
        Some(dist + 1)
    }

    /// [`slots_until`](Self::slots_until) for pages known to be on the
    /// broadcast. The coverage invariant — every page an assignment places
    /// on a disk appears in the generated program — is what bpp-verify rule
    /// V0 checks statically; callers that already hold a broadcast page
    /// (e.g. iterating [`slots`](Self::slots) or an assignment's disks) use
    /// this infallible form instead of unwrapping at each site.
    ///
    /// # Panics
    ///
    /// Panics when `page` is not on the broadcast (a V0 violation upstream).
    pub fn slots_until_present(&self, page: PageId, cursor: usize) -> usize {
        debug_assert!(
            self.contains(page),
            "{page} is not on the broadcast — V0 coverage guarantees broadcast membership"
        );
        self.slots_until(page, cursor)
            .expect("page is on the broadcast (bpp-verify V0 coverage)") // bpp-lint: allow(D3): membership is the V0-verified coverage invariant
    }

    /// Expected number of push slots (inclusive) a client arriving at a
    /// uniformly random cursor position waits for `page`. `None` for
    /// pull-only pages.
    pub fn expected_slots(&self, page: PageId) -> Option<f64> {
        let occ = &self.occurrences[page.index()];
        if occ.is_empty() {
            return None;
        }
        let m = self.slots.len() as f64;
        // Sum over inter-occurrence gaps g of g*(g+1)/2, averaged over M
        // possible arrival positions.
        let mut total = 0.0f64;
        for (i, &o) in occ.iter().enumerate() {
            let next = if i + 1 < occ.len() {
                occ[i + 1] as usize
            } else {
                occ[0] as usize + self.slots.len()
            };
            let g = (next - o as usize) as f64;
            total += g * (g + 1.0) / 2.0;
        }
        Some(total / m)
    }

    /// Pages on the broadcast (deduplicated count).
    pub fn distinct_pages(&self) -> usize {
        self.occurrences.iter().filter(|o| !o.is_empty()).count()
    }
}

pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple, reporting overflow instead of silently wrapping.
/// `None` means the true LCM does not fit in a `u64`.
pub(crate) fn checked_lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b)
}

pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    checked_lcm(a, b).expect("lcm overflows u64") // bpp-lint: allow(D3): chunk-count folds over disk frequencies are tiny; overflow here means a nonsensical spec and must not wrap silently
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{identity_ranking, Assignment, DiskSpec};

    fn paper_program() -> BroadcastProgram {
        let spec = DiskSpec::paper_default();
        let a = Assignment::with_offset(&identity_ranking(1000), &spec, 100);
        BroadcastProgram::generate(&a, 1000)
    }

    /// Figure 1 of the paper: pages a..g on three disks at speeds 4:2:1.
    fn fig1_program() -> BroadcastProgram {
        let spec = DiskSpec::new(vec![1, 2, 4], vec![4, 2, 1]);
        let ranked = identity_ranking(7); // a=0, b=1, ..., g=6
        let a = Assignment::from_ranking(&ranked, &spec);
        BroadcastProgram::generate(&a, 7)
    }

    #[test]
    fn fig1_major_cycle_is_12_pages() {
        let p = fig1_program();
        assert_eq!(p.major_cycle(), 12);
        assert_eq!(p.empty_slots(), 0);
        assert_eq!(p.num_minor_cycles(), 4);
        assert_eq!(p.minor_cycle(), 3);
    }

    #[test]
    fn fig1_frequencies_match_disk_speeds() {
        let p = fig1_program();
        assert_eq!(p.frequency(PageId(0)), 4); // a: fastest disk
        assert_eq!(p.frequency(PageId(1)), 2); // b
        assert_eq!(p.frequency(PageId(2)), 2); // c
        for g in 3..7 {
            assert_eq!(p.frequency(PageId(g)), 1); // d,e,f,g
        }
    }

    #[test]
    fn fig1_exact_layout() {
        // Minor cycles: (a, b, d) (a, c, e) (a, b, f) (a, c, g) — page a
        // every third slot, b/c alternating, d..g once each.
        let p = fig1_program();
        let expect = [0, 1, 3, 0, 2, 4, 0, 1, 5, 0, 2, 6];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(p.slot(i), Slot::Page(PageId(e)), "slot {i}");
        }
    }

    #[test]
    fn paper_configuration_dimensions() {
        let p = paper_program();
        // lcm(3,2,1)=6 minor cycles of 50+134+84 slots.
        assert_eq!(p.num_minor_cycles(), 6);
        assert_eq!(p.minor_cycle(), 50 + 134 + 84);
        assert_eq!(p.major_cycle(), 1608);
        assert_eq!(p.empty_slots(), 8);
        assert_eq!(p.distinct_pages(), 1000);
    }

    #[test]
    fn frequencies_match_relative_speeds() {
        let p = paper_program();
        // Fast disk holds ranks 100..200 under offset.
        assert_eq!(p.frequency(PageId(150)), 3);
        // Middle disk: ranks 200..600.
        assert_eq!(p.frequency(PageId(400)), 2);
        // Slow disk: hot block + ranks 600..1000.
        assert_eq!(p.frequency(PageId(0)), 1);
        assert_eq!(p.frequency(PageId(900)), 1);
    }

    #[test]
    fn every_page_broadcast_its_frequency_times() {
        let p = paper_program();
        let mut counts = vec![0usize; 1000];
        for s in p.slots() {
            if let Slot::Page(pg) = s {
                counts[pg.index()] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c, p.frequency(PageId(i as u32)), "page {i}");
        }
    }

    #[test]
    fn slots_until_is_exact_and_wraps() {
        let p = fig1_program();
        // Layout: a b d a c e a b f a c g
        assert_eq!(p.slots_until(PageId(0), 0), Some(1)); // a at slot 0
        assert_eq!(p.slots_until(PageId(0), 1), Some(3)); // next a at slot 3
        assert_eq!(p.slots_until(PageId(3), 0), Some(3)); // d at slot 2
        assert_eq!(p.slots_until(PageId(3), 3), Some(12)); // wraps to slot 2
        assert_eq!(p.slots_until(PageId(6), 11), Some(1)); // g at slot 11
        assert_eq!(p.slots_until(PageId(6), 12), Some(12)); // cursor wraps
    }

    #[test]
    fn slots_until_none_for_pull_only_pages() {
        let spec = DiskSpec::new(vec![2, 2], vec![2, 1]);
        let mut a = Assignment::from_ranking(&identity_ranking(4), &spec);
        a.chop(2);
        let p = BroadcastProgram::generate(&a, 4);
        assert_eq!(p.slots_until(PageId(3), 0), None);
        assert!(!p.contains(PageId(3)));
        assert!(p.contains(PageId(0)));
    }

    #[test]
    fn empty_assignment_yields_empty_program() {
        let spec = DiskSpec::new(vec![2], vec![1]);
        let mut a = Assignment::from_ranking(&identity_ranking(2), &spec);
        a.chop(2);
        let p = BroadcastProgram::generate(&a, 2);
        assert_eq!(p.major_cycle(), 0);
        assert_eq!(p.slots_until(PageId(0), 0), None);
        assert_eq!(p.distinct_pages(), 0);
    }

    #[test]
    fn expected_slots_for_evenly_spaced_page() {
        let p = fig1_program();
        // Page a appears every 3 slots: waits 1,2,3 equally likely -> 2.0.
        let e = p.expected_slots(PageId(0)).unwrap();
        assert!((e - 2.0).abs() < 1e-12);
        // Slow-disk pages appear once per 12: mean of 1..=12 = 6.5.
        let e = p.expected_slots(PageId(4)).unwrap();
        assert!((e - 6.5).abs() < 1e-12);
        assert_eq!(p.expected_slots(PageId(0)).map(|_| ()), Some(()));
    }

    #[test]
    fn expected_slots_consistent_with_brute_force() {
        let p = paper_program();
        for &pid in &[PageId(150), PageId(400), PageId(900), PageId(0)] {
            let m = p.major_cycle();
            let brute: f64 = (0..m)
                .map(|c| p.slots_until(pid, c).unwrap() as f64)
                .sum::<f64>()
                / m as f64;
            let fast = p.expected_slots(pid).unwrap();
            assert!((brute - fast).abs() < 1e-9, "{pid}: {brute} vs {fast}");
        }
    }

    #[test]
    fn faster_disk_pages_arrive_sooner_on_average() {
        let p = paper_program();
        let fast = p.expected_slots(PageId(150)).unwrap();
        let mid = p.expected_slots(PageId(400)).unwrap();
        let slow = p.expected_slots(PageId(900)).unwrap();
        assert!(fast < mid && mid < slow, "{fast} {mid} {slow}");
        // Roughly major/2f for even spacing.
        assert!((fast - 1608.0 / 6.0).abs() < 60.0, "fast {fast}");
        assert!((slow - 1608.0 / 2.0).abs() < 60.0, "slow {slow}");
    }

    #[test]
    fn single_flat_disk_round_robins() {
        let spec = DiskSpec::flat(5);
        let a = Assignment::from_ranking(&identity_ranking(5), &spec);
        let p = BroadcastProgram::generate(&a, 5);
        assert_eq!(p.major_cycle(), 5);
        assert_eq!(p.empty_slots(), 0);
        for i in 0..5 {
            assert_eq!(p.slot(i), Slot::Page(PageId(i as u32)));
            assert_eq!(p.frequency(PageId(i as u32)), 1);
        }
    }

    #[test]
    fn disk_map_charges_every_slot_to_its_disk() {
        let p = fig1_program();
        // Minor cycle = one chunk per disk: disk 0 (a), disk 1 (b/c), disk 2.
        let expect = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2];
        for (i, &d) in expect.iter().enumerate() {
            assert_eq!(p.disk_of_slot(i), d, "slot {i}");
        }
        assert_eq!(p.disk_map().len(), p.major_cycle());

        // Paper config: padding slots are charged to a disk too.
        let p = paper_program();
        let mut per_disk = [0usize; 3];
        for i in 0..p.major_cycle() {
            per_disk[p.disk_of_slot(i)] += 1;
        }
        // Disk k gets chunk_size[k] * 6 slots: 50*6 + 134*6 + 84*6 = 1608.
        assert_eq!(per_disk, [300, 804, 504]);
    }

    #[test]
    fn from_slots_round_trips_generate() {
        let p = fig1_program();
        let q = BroadcastProgram::from_slots(
            p.slots().to_vec(),
            p.disk_map().to_vec(),
            p.minor_cycle(),
            p.num_minor_cycles(),
            p.db_size(),
        );
        assert_eq!(q.major_cycle(), p.major_cycle());
        for pg in 0..7 {
            let pid = PageId(pg);
            assert_eq!(q.frequency(pid), p.frequency(pid));
            assert_eq!(q.slots_until(pid, 5), p.slots_until(pid, 5));
        }
    }

    #[test]
    fn slots_until_present_matches_fallible_form() {
        let p = fig1_program();
        for cursor in 0..=12 {
            for pg in 0..7 {
                let pid = PageId(pg);
                assert_eq!(
                    p.slots_until_present(pid, cursor),
                    p.slots_until(pid, cursor).unwrap()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not on the broadcast")]
    fn slots_until_present_panics_for_pull_only_pages() {
        let spec = DiskSpec::new(vec![2, 2], vec![2, 1]);
        let mut a = Assignment::from_ranking(&identity_ranking(4), &spec);
        a.chop(2);
        let p = BroadcastProgram::generate(&a, 4);
        p.slots_until_present(PageId(3), 0);
    }

    #[test]
    fn lcm_gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(3, 2), 6);
        assert_eq!(lcm(1, 1), 1);
        assert_eq!([4u64, 2, 1].iter().copied().fold(1, lcm), 4);
    }

    #[test]
    fn checked_lcm_reports_overflow() {
        assert_eq!(checked_lcm(3, 2), Some(6));
        assert_eq!(checked_lcm(0, 5), Some(0));
        // Consecutive integers are coprime, so the true LCM is their
        // product — far past u64::MAX.
        assert_eq!(checked_lcm(u64::MAX, u64::MAX - 1), None);
    }

    #[test]
    #[should_panic(expected = "lcm overflows u64")]
    fn unchecked_lcm_panics_on_overflow() {
        lcm(u64::MAX, u64::MAX - 1);
    }
}
