//! Automatic broadcast-program design.
//!
//! The paper (and \[Acha95a\] before it) hand-picks the disk layout —
//! 100/400/500 pages at speeds 3:2:1. This module answers the question a
//! user of the library actually has: *given my access probabilities, what
//! disk shape should I broadcast?*
//!
//! Theory: for a cyclic broadcast where page `i` appears with frequency
//! `f_i`, the expected wait is minimised when `f_i ∝ √p_i` (the classic
//! square-root rule of broadcast scheduling [Amma85, Wong88]). Broadcast
//! Disks quantise that ideal curve into a small number of discrete
//! frequencies. [`design_disks`] performs that quantisation optimally for
//! the analytic cost model:
//!
//! ```text
//! E[wait] = (Σ_k s_k·f_k) / 2 × Σ_j P_j / f_j
//! ```
//!
//! where `s_k` is the size and `P_k` the probability mass of disk `k`.
//! For a fixed frequency vector the optimal contiguous partition of the
//! probability-ranked pages is found by dynamic programming; frequency
//! vectors are enumerated over a small candidate range.

use crate::assignment::DiskSpec;

/// A designed layout: the spec plus its predicted expected wait (in slots,
/// for a client with no cache).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskDesign {
    /// The disk shape (sizes sum to the number of pages).
    pub spec: DiskSpec,
    /// Analytic expected wait of the design, in slots.
    pub expected_wait: f64,
}

/// The ideal (unquantised) relative broadcast frequencies: `√p_i`,
/// normalised so the coldest page has frequency 1.
pub fn square_root_frequencies(probs: &[f64]) -> Vec<f64> {
    assert!(!probs.is_empty(), "need at least one page");
    let min = probs
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .max(1e-300);
    probs.iter().map(|&p| (p / min).sqrt()).collect()
}

/// Analytic expected wait (slots) for a partition of `ranked_probs`
/// (hottest first) into contiguous disks of the given `sizes` broadcasting
/// at `freqs`, assuming ideal equal spacing within the cycle.
pub fn expected_wait(ranked_probs: &[f64], sizes: &[usize], freqs: &[u32]) -> f64 {
    assert_eq!(sizes.len(), freqs.len());
    assert_eq!(sizes.iter().sum::<usize>(), ranked_probs.len());
    let cycle: f64 = sizes
        .iter()
        .zip(freqs)
        .map(|(&s, &f)| s as f64 * f64::from(f))
        .sum();
    let mut wait = 0.0;
    let mut start = 0usize;
    for (&s, &f) in sizes.iter().zip(freqs) {
        let mass: f64 = ranked_probs[start..start + s].iter().sum();
        wait += mass * cycle / (2.0 * f64::from(f));
        start += s;
    }
    wait
}

/// Design a `num_disks`-level broadcast for pages whose access
/// probabilities are `ranked_probs` (hottest first), considering integer
/// frequencies up to `max_freq`.
///
/// Runs an exhaustive search over strictly-decreasing frequency vectors
/// (the fastest disk must actually be faster) with a dynamic program over
/// partition boundaries for each vector. Complexity is
/// `O(C(max_freq, num_disks) · num_disks · n²)` — comfortably fast for the
/// paper's 1000-page database.
///
/// # Panics
/// If `num_disks` is 0, exceeds the page count or `max_freq`, or any
/// probability is negative.
pub fn design_disks(ranked_probs: &[f64], num_disks: usize, max_freq: u32) -> DiskDesign {
    let n = ranked_probs.len();
    assert!(num_disks >= 1, "need at least one disk");
    assert!(n >= num_disks, "more disks than pages");
    assert!(
        max_freq as usize >= num_disks,
        "need at least num_disks distinct frequencies"
    );
    assert!(
        ranked_probs.iter().all(|&p| p >= 0.0 && p.is_finite()),
        "probabilities must be finite and non-negative"
    );

    let prefix: Vec<f64> = std::iter::once(0.0)
        .chain(ranked_probs.iter().scan(0.0, |acc, &p| {
            *acc += p;
            Some(*acc)
        }))
        .collect();

    let mut best: Option<DiskDesign> = None;
    let mut freqs = Vec::with_capacity(num_disks);
    enumerate_decreasing(max_freq, num_disks, &mut freqs, &mut |freqs| {
        if let Some(design) = best_partition(&prefix, n, freqs) {
            if best
                .as_ref()
                .is_none_or(|b| design.expected_wait < b.expected_wait)
            {
                best = Some(design);
            }
        }
    });
    // bpp-lint: allow(D3): the candidate set iterated above is statically non-empty
    best.expect("at least one frequency vector exists")
}

/// Enumerate strictly decreasing vectors of length `len` over `1..=max`.
fn enumerate_decreasing(max: u32, len: usize, acc: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
    if acc.len() == len {
        f(acc);
        return;
    }
    let upper = acc.last().map_or(max, |&l| l - 1);
    let remaining = (len - acc.len()) as u32;
    // Must leave room for a strictly decreasing tail ending at >= 1.
    for v in (remaining..=upper).rev() {
        acc.push(v);
        enumerate_decreasing(max, len, acc, f);
        acc.pop();
    }
}

/// For a fixed frequency vector, find boundaries minimising the cost by DP.
///
/// cost = cycle/2 × Σ_k mass_k / f_k with cycle = Σ_k s_k f_k. The two
/// factors couple every disk, so we run the DP on the *pair* objective:
/// minimise W(sizes) = Σ mass_k/f_k for each achievable cycle length is
/// infeasible; instead we exploit that for fixed boundaries the cost is
/// cheap to evaluate and the partition space for small `num_disks` is
/// tiny after DP on one factor fails — so we do exact search over
/// boundaries with pruning for ≤3 disks and a coordinate-descent refinement
/// for deeper hierarchies.
fn best_partition(prefix: &[f64], n: usize, freqs: &[u32]) -> Option<DiskDesign> {
    let d = freqs.len();
    if d == 1 {
        let sizes = vec![n];
        let wait = cost(prefix, n, &[n], freqs);
        return Some(DiskDesign {
            spec: DiskSpec::new(sizes, freqs.to_vec()),
            expected_wait: wait,
        });
    }
    if d == 2 {
        let mut best: Option<(Vec<usize>, f64)> = None;
        for b in 1..n {
            let sizes = [b, n - b];
            let w = cost(prefix, n, &sizes, freqs);
            if best.as_ref().is_none_or(|(_, bw)| w < *bw) {
                best = Some((sizes.to_vec(), w));
            }
        }
        return best.map(|(sizes, wait)| DiskDesign {
            spec: DiskSpec::new(sizes, freqs.to_vec()),
            expected_wait: wait,
        });
    }
    if d == 3 {
        // Exact O(n²) scan with early pruning on the inner loop.
        let mut best: Option<(Vec<usize>, f64)> = None;
        for b1 in 1..n - 1 {
            for b2 in b1 + 1..n {
                let sizes = [b1, b2 - b1, n - b2];
                let w = cost(prefix, n, &sizes, freqs);
                if best.as_ref().is_none_or(|(_, bw)| w < *bw) {
                    best = Some((sizes.to_vec(), w));
                }
            }
        }
        return best.map(|(sizes, wait)| DiskDesign {
            spec: DiskSpec::new(sizes, freqs.to_vec()),
            expected_wait: wait,
        });
    }
    // d >= 4: coordinate descent from an equal split.
    let mut bounds: Vec<usize> = (1..d).map(|k| k * n / d).collect();
    let mut improved = true;
    let mut best_w = cost_of_bounds(prefix, n, &bounds, freqs);
    while improved {
        improved = false;
        for k in 0..bounds.len() {
            let lo = if k == 0 { 1 } else { bounds[k - 1] + 1 };
            let hi = if k + 1 < bounds.len() {
                bounds[k + 1] - 1
            } else {
                n - 1
            };
            for candidate in lo..=hi {
                let old = bounds[k];
                bounds[k] = candidate;
                let w = cost_of_bounds(prefix, n, &bounds, freqs);
                if w + 1e-12 < best_w {
                    best_w = w;
                    improved = true;
                } else {
                    bounds[k] = old;
                }
            }
        }
    }
    let sizes = bounds_to_sizes(n, &bounds);
    Some(DiskDesign {
        spec: DiskSpec::new(sizes, freqs.to_vec()),
        expected_wait: best_w,
    })
}

fn bounds_to_sizes(n: usize, bounds: &[usize]) -> Vec<usize> {
    let mut sizes = Vec::with_capacity(bounds.len() + 1);
    let mut prev = 0usize;
    for &b in bounds {
        sizes.push(b - prev);
        prev = b;
    }
    sizes.push(n - prev);
    sizes
}

fn cost_of_bounds(prefix: &[f64], n: usize, bounds: &[usize], freqs: &[u32]) -> f64 {
    cost(prefix, n, &bounds_to_sizes(n, bounds), freqs)
}

fn cost(prefix: &[f64], _n: usize, sizes: &[usize], freqs: &[u32]) -> f64 {
    let cycle: f64 = sizes
        .iter()
        .zip(freqs)
        .map(|(&s, &f)| s as f64 * f64::from(f))
        .sum();
    let mut wait = 0.0;
    let mut start = 0usize;
    for (&s, &f) in sizes.iter().zip(freqs) {
        let mass = prefix[start + s] - prefix[start];
        wait += mass * cycle / (2.0 * f64::from(f));
        start += s;
    }
    wait
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipfish(n: usize, theta: f64) -> Vec<f64> {
        let mut probs: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-theta)).collect();
        let h: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= h;
        }
        probs
    }

    #[test]
    fn sqrt_frequencies_follow_the_rule() {
        let probs = [0.64, 0.16, 0.16, 0.04];
        let f = square_root_frequencies(&probs);
        assert!((f[0] - 4.0).abs() < 1e-12);
        assert!((f[1] - 2.0).abs() < 1e-12);
        assert!((f[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_probs_prefer_a_flat_disk() {
        let probs = vec![0.01; 100];
        let d = design_disks(&probs, 1, 5);
        assert_eq!(d.spec.sizes, vec![100]);
        // Flat disk wait = cycle/2 when f=1... cost model: 100*f/2 / f = 50.
        assert!((d.expected_wait - 50.0).abs() < 1e-9);
        // Forcing strictly decreasing frequencies onto uniform data can
        // only hurt (Cauchy–Schwarz: cost >= n/2 with equality iff all
        // frequencies are equal) — and the optimum quantisation stays close.
        let d3 = design_disks(&probs, 3, 5);
        assert!(d3.expected_wait >= 50.0 - 1e-9);
        assert!(d3.expected_wait < 55.0, "got {}", d3.expected_wait);
    }

    #[test]
    fn skewed_probs_gain_from_multiple_disks() {
        let probs = zipfish(200, 0.95);
        let flat = design_disks(&probs, 1, 1).expected_wait;
        let three = design_disks(&probs, 3, 8).expected_wait;
        assert!(
            three < flat * 0.75,
            "3-disk design {three} should clearly beat flat {flat}"
        );
    }

    #[test]
    fn more_disks_never_hurt() {
        let probs = zipfish(150, 1.0);
        let d2 = design_disks(&probs, 2, 6).expected_wait;
        let d3 = design_disks(&probs, 3, 6).expected_wait;
        assert!(d3 <= d2 + 1e-9, "d3 {d3} vs d2 {d2}");
    }

    #[test]
    fn expected_wait_matches_cost_helper() {
        let probs = zipfish(100, 0.9);
        let w = expected_wait(&probs, &[10, 30, 60], &[4, 2, 1]);
        assert!(w > 0.0 && w.is_finite());
        // Hand check: cycle = 40+60+60 = 160.
        let m1: f64 = probs[..10].iter().sum();
        let m2: f64 = probs[10..40].iter().sum();
        let m3: f64 = probs[40..].iter().sum();
        let hand = 160.0 * (m1 / 8.0 + m2 / 4.0 + m3 / 2.0);
        assert!((w - hand).abs() < 1e-9);
    }

    #[test]
    fn designed_spec_is_valid_and_covers_all_pages() {
        let probs = zipfish(300, 0.95);
        let d = design_disks(&probs, 3, 6);
        assert_eq!(d.spec.total_pages(), 300);
        assert_eq!(d.spec.num_disks(), 3);
        // Frequencies strictly decreasing.
        assert!(d.spec.rel_freqs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn four_disk_descent_is_sane() {
        let probs = zipfish(120, 1.1);
        let d4 = design_disks(&probs, 4, 8);
        assert_eq!(d4.spec.total_pages(), 120);
        let d1 = design_disks(&probs, 1, 8);
        assert!(d4.expected_wait < d1.expected_wait);
    }

    #[test]
    fn analytic_design_agrees_with_generated_program() {
        // The design cost model assumes ideal spacing; the real generator's
        // delay (with chunk quantisation) should track it closely.
        use crate::assignment::{identity_ranking, Assignment};
        use crate::program::BroadcastProgram;
        use crate::PageId;
        let probs = zipfish(200, 0.95);
        let d = design_disks(&probs, 3, 6);
        let a = Assignment::from_ranking(&identity_ranking(200), &d.spec);
        let prog = BroadcastProgram::generate(&a, 200);
        let real: f64 = (0..200)
            .map(|i| probs[i] * prog.expected_slots(PageId(i as u32)).unwrap())
            .sum();
        let rel = (real - d.expected_wait).abs() / d.expected_wait;
        assert!(
            rel < 0.15,
            "model {} vs program {} (rel {rel})",
            d.expected_wait,
            real
        );
    }

    #[test]
    #[should_panic(expected = "more disks than pages")]
    fn too_many_disks_panics() {
        design_disks(&[0.5, 0.5], 3, 5);
    }
}
