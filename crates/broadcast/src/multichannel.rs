//! K-channel broadcast view and conflict-freedom precheck.
//!
//! Multi-channel broadcast scheduling (Kenyon/Schabanel/Young's PTAS, and
//! the conflict-avoidance line of Lai et al.) spreads the push schedule
//! across `K` parallel channels. A mobile client tunes to **one** channel
//! per slot, so a placement is only usable when no client ever *needs* two
//! pages that fly simultaneously on different channels — the
//! *conflict-freedom* precondition both papers assume.
//!
//! [`MultiChannelProgram`] is the minimal view of such a placement: one
//! [`BroadcastProgram`] per channel over a common page universe, with slot
//! `t` of every channel on air at the same instant (channels shorter than
//! the aligned cycle repeat). [`MultiChannelProgram::conflicts`] is the
//! static precheck consumed by bpp-verify rule V6; given the client access
//! sets, it reports every pair of same-slot different-channel pages a
//! single set needs.
//!
//! [`MultiChannelProgram::generate`] is the K-channel generator: it
//! partitions a ranked [`Assignment`] across channels so that every access
//! set lands wholly on one channel — which makes the placement
//! conflict-free *by construction* (no cross-channel page pair within a
//! set can exist). The generator still routes through
//! [`MultiChannelProgram::from_channels_checked`] as defense in depth, so
//! a future placement bug fails loudly rather than shipping a schedule a
//! single-tuner client cannot follow.

use crate::assignment::{Assignment, DiskSpec};
use crate::program::{checked_lcm, BroadcastProgram, Slot};
use crate::PageId;
use std::collections::BTreeSet;

/// A set of per-channel broadcast programs aired in lock-step.
#[derive(Debug, Clone)]
pub struct MultiChannelProgram {
    channels: Vec<BroadcastProgram>,
    db_size: usize,
}

/// One violation of conflict freedom: two pages of one access set on air
/// in the same aligned slot on different channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConflict {
    /// Index of the offending access set.
    pub set: usize,
    /// Aligned slot at which both pages fly.
    pub slot: usize,
    /// `(channel, page)` of the first colliding page.
    pub first: (usize, PageId),
    /// `(channel, page)` of the second colliding page.
    pub second: (usize, PageId),
}

impl MultiChannelProgram {
    /// Assemble a view from per-channel programs.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is empty or the programs disagree on the
    /// database size (the page universe must be shared).
    pub fn from_channels(channels: Vec<BroadcastProgram>) -> Self {
        assert!(!channels.is_empty(), "at least one channel");
        let db_size = channels[0].db_size();
        assert!(
            channels.iter().all(|c| c.db_size() == db_size),
            "all channels must share one page universe"
        );
        MultiChannelProgram { channels, db_size }
    }

    /// The single-channel (K = 1) view of an ordinary program.
    pub fn single(program: BroadcastProgram) -> Self {
        Self::from_channels(vec![program])
    }

    /// [`from_channels`](Self::from_channels) plus the conflict-freedom
    /// precheck: the placement is rejected (first conflict returned) when
    /// any access set needs two distinct pages that share an aligned slot
    /// on different channels. This is the gate every placement must pass
    /// before it reaches clients — [`generate`](Self::generate) routes
    /// through it, and the mutation tests feed it deliberately conflicting
    /// hand-built placements.
    ///
    /// # Panics
    ///
    /// Panics as [`from_channels`](Self::from_channels) and
    /// [`conflicts`](Self::conflicts) do (empty channel list, mismatched
    /// universes, out-of-universe access-set pages, aligned overflow).
    pub fn from_channels_checked(
        channels: Vec<BroadcastProgram>,
        access_sets: &[Vec<PageId>],
    ) -> Result<Self, ChannelConflict> {
        let mc = Self::from_channels(channels);
        match mc.conflicts(access_sets).into_iter().next() {
            None => Ok(mc),
            Some(c) => Err(c),
        }
    }

    /// Generate a conflict-free K-channel placement from a ranked
    /// [`Assignment`].
    ///
    /// Pages that an access set names together are confined to one channel
    /// (transitively: access sets sharing a page merge into one component),
    /// so no access set can ever straddle channels — conflict freedom holds
    /// by construction, and a single-tuner client finds everything it needs
    /// on the channel it tunes to. Components are placed greedily on the
    /// least-loaded channel (by page count, lowest index on ties) in rank
    /// order, so hot components spread across channels first. Each channel
    /// keeps the assignment's disk structure: its share of disk `d` stays
    /// on a disk with relative frequency `rel_freqs[d]`, preserving the
    /// square-root frequency design per channel. Chopped (pull-only) pages
    /// stay off every channel; channels left without pages air the empty
    /// program.
    ///
    /// `num_channels == 1` reduces exactly to
    /// [`single`](Self::single)`(`[`BroadcastProgram::generate`]`)`.
    ///
    /// # Panics
    ///
    /// Panics when `num_channels` is zero or an access set names a page
    /// outside `0..db_size`.
    pub fn generate(
        assignment: &Assignment,
        db_size: usize,
        num_channels: usize,
        access_sets: &[Vec<PageId>],
    ) -> Self {
        assert!(num_channels > 0, "at least one channel");
        for (si, set) in access_sets.iter().enumerate() {
            for p in set {
                assert!(
                    p.index() < db_size,
                    "access set {si} page {p} outside the {db_size}-page universe"
                ); // bpp-lint: allow(D3): documented panic — malformed inputs must not generate a placement
            }
        }
        if num_channels == 1 {
            return Self::single(BroadcastProgram::generate(assignment, db_size));
        }

        // Union-find over the page universe: pages named by one access set
        // collapse into a component that must share a channel.
        let mut parent: Vec<u32> = (0..db_size as u32).collect();
        for set in access_sets {
            for w in set.windows(2) {
                let (a, b) = (find(&mut parent, w[0].0), find(&mut parent, w[1].0));
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }

        // Greedy placement in rank order (disks fastest-first, each disk
        // hottest-first): the first page of an unplaced component binds the
        // whole component to the currently least-loaded channel.
        let num_disks = assignment.disks().len();
        let mut channel_of_root: Vec<Option<u32>> = vec![None; db_size];
        let mut load = vec![0usize; num_channels];
        let mut placed: Vec<Vec<Vec<PageId>>> = vec![vec![Vec::new(); num_disks]; num_channels];
        for (d, disk) in assignment.disks().iter().enumerate() {
            for &p in disk {
                let root = find(&mut parent, p.0) as usize;
                let k = match channel_of_root[root] {
                    Some(k) => k as usize,
                    None => {
                        let k = load
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &l)| l)
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        channel_of_root[root] = Some(k as u32);
                        k
                    }
                };
                placed[k][d].push(p);
                load[k] += 1;
            }
        }

        let channels: Vec<BroadcastProgram> = placed
            .into_iter()
            .map(|disks| {
                let sizes: Vec<usize> = disks.iter().map(Vec::len).collect();
                let ranking: Vec<PageId> = disks.concat();
                let spec = DiskSpec::new(sizes, assignment.rel_freqs().to_vec());
                let shard = Assignment::from_ranking(&ranking, &spec);
                BroadcastProgram::generate(&shard, db_size)
            })
            .collect();
        Self::from_channels_checked(channels, access_sets)
            // bpp-lint: allow(D3): defense in depth — reaching this is a generator bug, not a runtime condition
            .expect("component-confined placement is conflict-free by construction")
    }

    /// Number of channels, including empty (pull-only) ones.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The program aired on channel `k`.
    pub fn channel(&self, k: usize) -> &BroadcastProgram {
        &self.channels[k]
    }

    /// Total number of database pages across the shared universe.
    pub fn db_size(&self) -> usize {
        self.db_size
    }

    /// Lowest channel broadcasting `page`, or `None` when the page is
    /// pull-only on every channel.
    pub fn channel_of(&self, page: PageId) -> Option<usize> {
        self.channels.iter().position(|c| c.contains(page))
    }

    /// Length of the aligned super-cycle: the LCM of the non-empty channel
    /// cycles (zero when every channel is empty). Conflict detection scans
    /// this many slots, so wildly coprime channel cycles are expensive to
    /// check — by design, since they are also expensive to tune to.
    ///
    /// # Panics
    ///
    /// Panics when the super-cycle does not fit the machine word (see
    /// [`checked_aligned_cycle`](Self::checked_aligned_cycle) for the
    /// fallible form). Such a placement cannot be scanned for conflicts —
    /// and no client could tune to it either.
    pub fn aligned_cycle(&self) -> usize {
        // bpp-lint: allow(D3): documented panic; checked_aligned_cycle is the recoverable form
        self.checked_aligned_cycle().expect(
            "aligned super-cycle overflows usize — coprime channel cycles this long are untunable",
        )
    }

    /// [`aligned_cycle`](Self::aligned_cycle) without the overflow panic:
    /// `None` when the LCM of the live channel cycles exceeds `u64` (or
    /// the machine word), which previously wrapped silently and made
    /// [`conflicts`](Self::conflicts) scan a garbage-length window.
    pub fn checked_aligned_cycle(&self) -> Option<usize> {
        let mut acc: u64 = 1;
        let mut any = false;
        for m in self
            .channels
            .iter()
            .map(BroadcastProgram::major_cycle)
            .filter(|&m| m > 0)
        {
            any = true;
            acc = checked_lcm(acc, m as u64)?;
        }
        if !any {
            return Some(0);
        }
        usize::try_from(acc).ok()
    }

    /// Scan the aligned cycle for conflict-freedom violations.
    ///
    /// For each access set, every unordered pair of distinct pages the set
    /// needs that ever share an aligned slot on different channels is
    /// reported once (at its first colliding slot, channels in ascending
    /// order). The same page duplicated across channels is *not* a
    /// conflict — an extra copy only helps. Results are deterministic:
    /// ordered by access set, then slot, then channel pair.
    ///
    /// # Panics
    ///
    /// Panics when an access set names a page outside the shared universe
    /// (`index() >= db_size`) — silently skipping such pages would let a
    /// malformed input pass the precheck clean — or when the aligned
    /// super-cycle overflows (see [`aligned_cycle`](Self::aligned_cycle)).
    pub fn conflicts(&self, access_sets: &[Vec<PageId>]) -> Vec<ChannelConflict> {
        for (si, set) in access_sets.iter().enumerate() {
            for p in set {
                assert!(
                    p.index() < self.db_size,
                    "access set {si} page {p} outside the {}-page universe",
                    self.db_size
                ); // bpp-lint: allow(D3): documented panic — a malformed access set must not verify clean
            }
        }
        let live: Vec<(usize, &BroadcastProgram)> = self
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.major_cycle() > 0)
            .collect();
        let mut out = Vec::new();
        if live.len() < 2 {
            return out;
        }
        let aligned = self.aligned_cycle();
        for (si, set) in access_sets.iter().enumerate() {
            let mut member = vec![false; self.db_size];
            for p in set {
                member[p.index()] = true;
            }
            let mut reported: BTreeSet<(PageId, PageId)> = BTreeSet::new();
            let mut flying: Vec<(usize, PageId)> = Vec::new();
            for t in 0..aligned {
                flying.clear();
                for &(ci, prog) in &live {
                    if let Slot::Page(p) = prog.slot(t % prog.major_cycle()) {
                        if member[p.index()] {
                            flying.push((ci, p));
                        }
                    }
                }
                for i in 0..flying.len() {
                    for j in (i + 1)..flying.len() {
                        let (ca, pa) = flying[i];
                        let (cb, pb) = flying[j];
                        if pa == pb {
                            continue;
                        }
                        if reported.insert((pa.min(pb), pa.max(pb))) {
                            out.push(ChannelConflict {
                                set: si,
                                slot: t,
                                first: (ca, pa),
                                second: (cb, pb),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Union-find `find` with path halving.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let grand = parent[parent[x as usize] as usize];
        parent[x as usize] = grand;
        x = grand;
    }
    x
}

/// The default client access sets used by the V6 precheck and the
/// K-channel generator: the hottest eight uncached broadcast pages as one
/// set (empty when nothing qualifies). Pages are ranked by access weight
/// descending, index ascending on ties — deterministic, so the simulator
/// and bpp-verify derive identical sets from identical inputs and every
/// placement the simulator airs is the placement the verifier checks.
pub fn hot_access_sets(
    program: &BroadcastProgram,
    weights: &[f64],
    cached: &[PageId],
) -> Vec<Vec<PageId>> {
    let mut is_cached = vec![false; program.db_size()];
    for p in cached {
        is_cached[p.index()] = true;
    }
    let mut hot: Vec<PageId> = (0..program.db_size() as u32)
        .map(PageId)
        .filter(|&p| program.contains(p) && !is_cached[p.index()])
        .collect();
    hot.sort_by(|a, b| {
        weights[b.index()]
            .partial_cmp(&weights[a.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    hot.truncate(8);
    if hot.is_empty() {
        Vec::new()
    } else {
        vec![hot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{identity_ranking, Assignment, DiskSpec};

    /// A flat round-robin program over pages `lo..hi` of a `db` universe.
    fn band_program(db: usize, lo: u32, hi: u32) -> BroadcastProgram {
        let pages: Vec<PageId> = (lo..hi).map(PageId).collect();
        let spec = DiskSpec::flat(pages.len());
        let a = Assignment::from_ranking(&pages, &spec);
        BroadcastProgram::generate(&a, db)
    }

    #[test]
    fn single_channel_is_always_conflict_free() {
        let p = band_program(10, 0, 10);
        let mc = MultiChannelProgram::single(p);
        let sets = vec![(0..10).map(PageId).collect::<Vec<_>>()];
        assert!(mc.conflicts(&sets).is_empty());
        assert_eq!(mc.num_channels(), 1);
        assert_eq!(mc.aligned_cycle(), 10);
    }

    #[test]
    fn per_channel_access_sets_do_not_conflict() {
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(10, 0, 5),
            band_program(10, 5, 10),
        ]);
        // Each client only needs pages from one channel.
        let sets = vec![
            (0..5).map(PageId).collect::<Vec<_>>(),
            (5..10).map(PageId).collect::<Vec<_>>(),
        ];
        assert!(mc.conflicts(&sets).is_empty());
        assert_eq!(mc.channel_of(PageId(7)), Some(1));
        assert_eq!(mc.channel_of(PageId(2)), Some(0));
    }

    #[test]
    fn cross_channel_same_slot_need_is_a_conflict() {
        // Channel 0 airs p0..p5, channel 1 airs p5..p10, both period 5:
        // slot t carries p{t} and p{5+t} simultaneously.
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(10, 0, 5),
            band_program(10, 5, 10),
        ]);
        let sets = vec![vec![PageId(2), PageId(7)]];
        let c = mc.conflicts(&sets);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].set, 0);
        assert_eq!(c[0].slot, 2);
        assert_eq!(c[0].first, (0, PageId(2)));
        assert_eq!(c[0].second, (1, PageId(7)));
        // Offset pages never collide: p2 flies at slot 2, p8 at slot 3.
        let sets = vec![vec![PageId(2), PageId(8)]];
        assert!(mc.conflicts(&sets).is_empty());
    }

    #[test]
    fn duplicated_page_across_channels_is_not_a_conflict() {
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(10, 0, 5),
            band_program(10, 0, 5),
        ]);
        let sets = vec![(0..5).map(PageId).collect::<Vec<_>>()];
        assert!(mc.conflicts(&sets).is_empty());
    }

    #[test]
    fn aligned_cycle_is_the_lcm_of_live_channels() {
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(20, 0, 4),  // cycle 4
            band_program(20, 4, 10), // cycle 6
        ]);
        assert_eq!(mc.aligned_cycle(), 12);
        // A conflict pair that only collides in the second repetition of
        // the shorter channel is still found.
        // Channel 0 slot pattern: p0 p1 p2 p3 (period 4); channel 1:
        // p4..p9 (period 6). p1 and p9 share aligned slot 5 (1 mod 4 = 5?
        // no: slot 5 -> ch0 p1, ch1 p9). Check the scan finds it.
        let sets = vec![vec![PageId(1), PageId(9)]];
        let c = mc.conflicts(&sets);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].slot, 5);
    }

    #[test]
    fn empty_channels_are_ignored() {
        let spec = DiskSpec::flat(3);
        let mut a = Assignment::from_ranking(&identity_ranking(3), &spec);
        a.chop(3);
        let empty = BroadcastProgram::generate(&a, 10);
        let mc = MultiChannelProgram::from_channels(vec![empty, band_program(10, 0, 5)]);
        assert_eq!(mc.aligned_cycle(), 5);
        let sets = vec![(0..5).map(PageId).collect::<Vec<_>>()];
        assert!(mc.conflicts(&sets).is_empty());
    }

    /// Five coprime prime cycles whose product (~3.7e19) exceeds u64::MAX:
    /// the old unchecked fold wrapped silently and `conflicts` scanned a
    /// garbage-length window.
    fn overflowing_mc() -> MultiChannelProgram {
        let primes: [u32; 5] = [8191, 8209, 8219, 8221, 8231];
        let db: u32 = primes.iter().sum();
        let mut lo = 0u32;
        let mut chans = Vec::new();
        for p in primes {
            chans.push(band_program(db as usize, lo, lo + p));
            lo += p;
        }
        MultiChannelProgram::from_channels(chans)
    }

    #[test]
    fn checked_aligned_cycle_reports_overflow() {
        assert_eq!(overflowing_mc().checked_aligned_cycle(), None);
        // And agrees with the panicking form on sane inputs.
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(20, 0, 4),
            band_program(20, 4, 10),
        ]);
        assert_eq!(mc.checked_aligned_cycle(), Some(mc.aligned_cycle()));
        let all_empty = {
            let spec = DiskSpec::flat(3);
            let mut a = Assignment::from_ranking(&identity_ranking(3), &spec);
            a.chop(3);
            MultiChannelProgram::single(BroadcastProgram::generate(&a, 3))
        };
        assert_eq!(all_empty.checked_aligned_cycle(), Some(0));
    }

    #[test]
    #[should_panic(expected = "aligned super-cycle overflows usize")]
    fn aligned_cycle_panics_on_overflow() {
        overflowing_mc().aligned_cycle();
    }

    #[test]
    #[should_panic(expected = "outside the 10-page universe")]
    fn out_of_universe_access_set_page_panics() {
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(10, 0, 5),
            band_program(10, 5, 10),
        ]);
        mc.conflicts(&[vec![PageId(2), PageId(10)]]);
    }

    #[test]
    #[should_panic(expected = "outside the 10-page universe")]
    fn single_channel_views_also_reject_malformed_sets() {
        // Validation must run before the <2-live-channels early return,
        // or every single-channel verify target would skip it.
        let mc = MultiChannelProgram::single(band_program(10, 0, 10));
        mc.conflicts(&[vec![PageId(11)]]);
    }

    #[test]
    fn generate_with_one_channel_matches_the_single_view() {
        let spec = DiskSpec::new(vec![2, 4, 6], vec![3, 2, 1]);
        let a = Assignment::from_ranking(&identity_ranking(12), &spec);
        let sets = vec![vec![PageId(0), PageId(1), PageId(2)]];
        let mc = MultiChannelProgram::generate(&a, 12, 1, &sets);
        let single = MultiChannelProgram::single(BroadcastProgram::generate(&a, 12));
        assert_eq!(mc.num_channels(), 1);
        assert_eq!(mc.channel(0).slots(), single.channel(0).slots());
    }

    #[test]
    fn generate_partitions_broadcast_pages_across_channels() {
        let spec = DiskSpec::new(vec![4, 8, 12], vec![3, 2, 1]);
        let mut a = Assignment::from_ranking(&identity_ranking(24), &spec);
        a.chop(6); // the 6 coldest pages become pull-only
        let sets = vec![vec![PageId(0), PageId(5)], vec![PageId(1), PageId(9)]];
        let mc = MultiChannelProgram::generate(&a, 24, 3, &sets);
        assert_eq!(mc.num_channels(), 3);
        // Every broadcast page appears on exactly one channel; chopped
        // pages on none.
        let mut owners = [0usize; 24];
        for k in 0..3 {
            for p in 0..24u32 {
                if mc.channel(k).contains(PageId(p)) {
                    owners[p as usize] += 1;
                }
            }
        }
        for d in a.disks() {
            for p in d {
                assert_eq!(owners[p.index()], 1, "{p} must live on exactly one channel");
            }
        }
        for p in a.non_broadcast() {
            assert_eq!(owners[p.index()], 0, "{p} is pull-only");
        }
        // Access sets are confined: all pages of a set share a channel.
        for set in &sets {
            let k = mc.channel_of(set[0]).unwrap();
            for &p in set {
                assert_eq!(mc.channel_of(p), Some(k), "{p} strayed off channel {k}");
            }
        }
        assert!(mc.conflicts(&sets).is_empty());
    }

    #[test]
    fn generate_balances_load_and_keeps_disk_frequencies() {
        let spec = DiskSpec::paper_default();
        let a = Assignment::with_offset(&identity_ranking(1000), &spec, 100);
        let sets = vec![(100..108).map(PageId).collect::<Vec<_>>()];
        let mc = MultiChannelProgram::generate(&a, 1000, 4, &sets);
        let loads: Vec<usize> = (0..4).map(|k| mc.channel(k).distinct_pages()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 1000);
        let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        // Greedy least-loaded placement: no channel dominates (the hot
        // 8-page component is the largest indivisible unit).
        assert!(max - min <= 8, "loads {loads:?}");
        // Fast-disk pages stay fast on their shard: rank-150 pages sit on
        // the 3x disk of whichever channel owns them.
        let owner = mc.channel_of(PageId(150)).unwrap();
        assert_eq!(mc.channel(owner).frequency(PageId(150)) % 3, 0);
        assert!(mc.conflicts(&sets).is_empty());
    }

    #[test]
    fn generate_survives_more_channels_than_components() {
        // One giant access set glues everything into a single component:
        // channels 1..K air the empty program.
        let spec = DiskSpec::flat(6);
        let a = Assignment::from_ranking(&identity_ranking(6), &spec);
        let sets = vec![(0..6).map(PageId).collect::<Vec<_>>()];
        let mc = MultiChannelProgram::generate(&a, 6, 3, &sets);
        assert_eq!(mc.num_channels(), 3);
        assert_eq!(mc.channel(0).distinct_pages(), 6);
        assert_eq!(mc.channel(1).major_cycle(), 0);
        assert_eq!(mc.channel(2).major_cycle(), 0);
        assert!(mc.conflicts(&sets).is_empty());
    }

    #[test]
    fn generated_placements_are_conflict_free_over_a_grid() {
        for k in [2usize, 3, 4, 8] {
            for chop in [0usize, 100, 400] {
                let spec = DiskSpec::paper_default();
                let mut a = Assignment::with_offset(&identity_ranking(1000), &spec, 100);
                a.chop(chop);
                let weights: Vec<f64> = (0..1000).map(|i| 1.0 / (i + 1) as f64).collect();
                let prog = BroadcastProgram::generate(&a, 1000);
                let sets = hot_access_sets(&prog, &weights, &[]);
                let mc = MultiChannelProgram::generate(&a, 1000, k, &sets);
                assert!(
                    mc.conflicts(&sets).is_empty(),
                    "k={k} chop={chop} placement conflicts"
                );
            }
        }
    }

    #[test]
    fn checked_constructor_rejects_a_conflicting_placement() {
        // Deliberately conflicting hand-built placement: p2 on channel 0
        // and p7 on channel 1 fly in the same aligned slot, and one set
        // needs both. The generator path must reject it — not only V6.
        let err = MultiChannelProgram::from_channels_checked(
            vec![band_program(10, 0, 5), band_program(10, 5, 10)],
            &[vec![PageId(2), PageId(7)]],
        )
        .unwrap_err();
        assert_eq!(err.set, 0);
        assert_eq!(err.slot, 2);
        assert_eq!(err.first, (0, PageId(2)));
        assert_eq!(err.second, (1, PageId(7)));
        // The same channels with confined sets are accepted.
        let ok = MultiChannelProgram::from_channels_checked(
            vec![band_program(10, 0, 5), band_program(10, 5, 10)],
            &[vec![PageId(2), PageId(4)], vec![PageId(7), PageId(9)]],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn hot_access_sets_picks_the_heaviest_uncached_pages() {
        let p = band_program(12, 0, 12);
        let mut weights = vec![0.0f64; 12];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = 12.0 - i as f64;
        }
        let sets = hot_access_sets(&p, &weights, &[PageId(0), PageId(1)]);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0], (2..10).map(PageId).collect::<Vec<_>>());
        // Nothing qualifies -> no sets at all.
        let all: Vec<PageId> = (0..12).map(PageId).collect();
        assert!(hot_access_sets(&p, &weights, &all).is_empty());
    }
}
