//! K-channel broadcast view and conflict-freedom precheck.
//!
//! Multi-channel broadcast scheduling (Kenyon/Schabanel/Young's PTAS, and
//! the conflict-avoidance line of Lai et al.) spreads the push schedule
//! across `K` parallel channels. A mobile client tunes to **one** channel
//! per slot, so a placement is only usable when no client ever *needs* two
//! pages that fly simultaneously on different channels — the
//! *conflict-freedom* precondition both papers assume.
//!
//! [`MultiChannelProgram`] is the minimal view of such a placement: one
//! [`BroadcastProgram`] per channel over a common page universe, with slot
//! `t` of every channel on air at the same instant (channels shorter than
//! the aligned cycle repeat). [`MultiChannelProgram::conflicts`] is the
//! static precheck consumed by bpp-verify rule V6 and, per ROADMAP, by the
//! future multi-channel generator: given the client access sets, report
//! every pair of same-slot different-channel pages a single set needs.
//!
//! A single-channel program is trivially conflict-free; the view exists so
//! the verifier API is already in place when K > 1 placements land.

use crate::program::{lcm, BroadcastProgram, Slot};
use crate::PageId;
use std::collections::BTreeSet;

/// A set of per-channel broadcast programs aired in lock-step.
#[derive(Debug, Clone)]
pub struct MultiChannelProgram {
    channels: Vec<BroadcastProgram>,
    db_size: usize,
}

/// One violation of conflict freedom: two pages of one access set on air
/// in the same aligned slot on different channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConflict {
    /// Index of the offending access set.
    pub set: usize,
    /// Aligned slot at which both pages fly.
    pub slot: usize,
    /// `(channel, page)` of the first colliding page.
    pub first: (usize, PageId),
    /// `(channel, page)` of the second colliding page.
    pub second: (usize, PageId),
}

impl MultiChannelProgram {
    /// Assemble a view from per-channel programs.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is empty or the programs disagree on the
    /// database size (the page universe must be shared).
    pub fn from_channels(channels: Vec<BroadcastProgram>) -> Self {
        assert!(!channels.is_empty(), "at least one channel");
        let db_size = channels[0].db_size();
        assert!(
            channels.iter().all(|c| c.db_size() == db_size),
            "all channels must share one page universe"
        );
        MultiChannelProgram { channels, db_size }
    }

    /// The single-channel (K = 1) view of an ordinary program.
    pub fn single(program: BroadcastProgram) -> Self {
        Self::from_channels(vec![program])
    }

    /// Number of channels, including empty (pull-only) ones.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The program aired on channel `k`.
    pub fn channel(&self, k: usize) -> &BroadcastProgram {
        &self.channels[k]
    }

    /// Total number of database pages across the shared universe.
    pub fn db_size(&self) -> usize {
        self.db_size
    }

    /// Lowest channel broadcasting `page`, or `None` when the page is
    /// pull-only on every channel.
    pub fn channel_of(&self, page: PageId) -> Option<usize> {
        self.channels.iter().position(|c| c.contains(page))
    }

    /// Length of the aligned super-cycle: the LCM of the non-empty channel
    /// cycles (zero when every channel is empty). Conflict detection scans
    /// this many slots, so wildly coprime channel cycles are expensive to
    /// check — by design, since they are also expensive to tune to.
    pub fn aligned_cycle(&self) -> usize {
        self.channels
            .iter()
            .map(BroadcastProgram::major_cycle)
            .filter(|&m| m > 0)
            .fold(1u64, |acc, m| lcm(acc, m as u64)) as usize
            * usize::from(self.channels.iter().any(|c| c.major_cycle() > 0))
    }

    /// Scan the aligned cycle for conflict-freedom violations.
    ///
    /// For each access set, every unordered pair of distinct pages the set
    /// needs that ever share an aligned slot on different channels is
    /// reported once (at its first colliding slot, channels in ascending
    /// order). The same page duplicated across channels is *not* a
    /// conflict — an extra copy only helps. Results are deterministic:
    /// ordered by access set, then slot, then channel pair.
    pub fn conflicts(&self, access_sets: &[Vec<PageId>]) -> Vec<ChannelConflict> {
        let live: Vec<(usize, &BroadcastProgram)> = self
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.major_cycle() > 0)
            .collect();
        let mut out = Vec::new();
        if live.len() < 2 {
            return out;
        }
        let aligned = self.aligned_cycle();
        for (si, set) in access_sets.iter().enumerate() {
            let mut member = vec![false; self.db_size];
            for p in set {
                if p.index() < self.db_size {
                    member[p.index()] = true;
                }
            }
            let mut reported: BTreeSet<(PageId, PageId)> = BTreeSet::new();
            let mut flying: Vec<(usize, PageId)> = Vec::new();
            for t in 0..aligned {
                flying.clear();
                for &(ci, prog) in &live {
                    if let Slot::Page(p) = prog.slot(t % prog.major_cycle()) {
                        if member[p.index()] {
                            flying.push((ci, p));
                        }
                    }
                }
                for i in 0..flying.len() {
                    for j in (i + 1)..flying.len() {
                        let (ca, pa) = flying[i];
                        let (cb, pb) = flying[j];
                        if pa == pb {
                            continue;
                        }
                        if reported.insert((pa.min(pb), pa.max(pb))) {
                            out.push(ChannelConflict {
                                set: si,
                                slot: t,
                                first: (ca, pa),
                                second: (cb, pb),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{identity_ranking, Assignment, DiskSpec};

    /// A flat round-robin program over pages `lo..hi` of a `db` universe.
    fn band_program(db: usize, lo: u32, hi: u32) -> BroadcastProgram {
        let pages: Vec<PageId> = (lo..hi).map(PageId).collect();
        let spec = DiskSpec::flat(pages.len());
        let a = Assignment::from_ranking(&pages, &spec);
        BroadcastProgram::generate(&a, db)
    }

    #[test]
    fn single_channel_is_always_conflict_free() {
        let p = band_program(10, 0, 10);
        let mc = MultiChannelProgram::single(p);
        let sets = vec![(0..10).map(PageId).collect::<Vec<_>>()];
        assert!(mc.conflicts(&sets).is_empty());
        assert_eq!(mc.num_channels(), 1);
        assert_eq!(mc.aligned_cycle(), 10);
    }

    #[test]
    fn per_channel_access_sets_do_not_conflict() {
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(10, 0, 5),
            band_program(10, 5, 10),
        ]);
        // Each client only needs pages from one channel.
        let sets = vec![
            (0..5).map(PageId).collect::<Vec<_>>(),
            (5..10).map(PageId).collect::<Vec<_>>(),
        ];
        assert!(mc.conflicts(&sets).is_empty());
        assert_eq!(mc.channel_of(PageId(7)), Some(1));
        assert_eq!(mc.channel_of(PageId(2)), Some(0));
    }

    #[test]
    fn cross_channel_same_slot_need_is_a_conflict() {
        // Channel 0 airs p0..p5, channel 1 airs p5..p10, both period 5:
        // slot t carries p{t} and p{5+t} simultaneously.
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(10, 0, 5),
            band_program(10, 5, 10),
        ]);
        let sets = vec![vec![PageId(2), PageId(7)]];
        let c = mc.conflicts(&sets);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].set, 0);
        assert_eq!(c[0].slot, 2);
        assert_eq!(c[0].first, (0, PageId(2)));
        assert_eq!(c[0].second, (1, PageId(7)));
        // Offset pages never collide: p2 flies at slot 2, p8 at slot 3.
        let sets = vec![vec![PageId(2), PageId(8)]];
        assert!(mc.conflicts(&sets).is_empty());
    }

    #[test]
    fn duplicated_page_across_channels_is_not_a_conflict() {
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(10, 0, 5),
            band_program(10, 0, 5),
        ]);
        let sets = vec![(0..5).map(PageId).collect::<Vec<_>>()];
        assert!(mc.conflicts(&sets).is_empty());
    }

    #[test]
    fn aligned_cycle_is_the_lcm_of_live_channels() {
        let mc = MultiChannelProgram::from_channels(vec![
            band_program(20, 0, 4),  // cycle 4
            band_program(20, 4, 10), // cycle 6
        ]);
        assert_eq!(mc.aligned_cycle(), 12);
        // A conflict pair that only collides in the second repetition of
        // the shorter channel is still found.
        // Channel 0 slot pattern: p0 p1 p2 p3 (period 4); channel 1:
        // p4..p9 (period 6). p1 and p9 share aligned slot 5 (1 mod 4 = 5?
        // no: slot 5 -> ch0 p1, ch1 p9). Check the scan finds it.
        let sets = vec![vec![PageId(1), PageId(9)]];
        let c = mc.conflicts(&sets);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].slot, 5);
    }

    #[test]
    fn empty_channels_are_ignored() {
        let spec = DiskSpec::flat(3);
        let mut a = Assignment::from_ranking(&identity_ranking(3), &spec);
        a.chop(3);
        let empty = BroadcastProgram::generate(&a, 10);
        let mc = MultiChannelProgram::from_channels(vec![empty, band_program(10, 0, 5)]);
        assert_eq!(mc.aligned_cycle(), 5);
        let sets = vec![(0..5).map(PageId).collect::<Vec<_>>()];
        assert!(mc.conflicts(&sets).is_empty());
    }
}
