//! # bpp-broadcast — Broadcast Disks programs
//!
//! Construction and interrogation of *Broadcast Disk* programs, the periodic
//! push schedules of \[Acha95a\] used by "Balancing Push and Pull for Data
//! Broadcast" (SIGMOD 1997).
//!
//! A broadcast program arranges the database on a set of virtual "disks"
//! spinning at different relative speeds: pages on faster disks appear more
//! often in the broadcast cycle. The scheduler here follows the published
//! algorithm:
//!
//! 1. split each disk `i` into `num_chunks(i) = max_chunks / rel_freq(i)`
//!    chunks, where `max_chunks` is the LCM of the relative frequencies;
//! 2. emit `max_chunks` *minor cycles*, each containing the next chunk of
//!    every disk in disk order;
//! 3. pad the final chunk of a disk with empty slots when the disk size
//!    does not divide evenly (unused bandwidth, exactly as in the paper).
//!
//! The crate also provides the two program *transforms* the paper studies:
//!
//! * **Offset** ([`Assignment::with_offset`]): shift the `CacheSize` hottest
//!   pages onto the slowest disk — clients cache them anyway, so broadcasting
//!   them frequently wastes bandwidth;
//! * **Truncation** ([`Assignment::chop`]): remove pages from the broadcast
//!   entirely (slowest disk first), making them pull-only.
//!
//! [`BroadcastProgram`] supports the queries the rest of the system needs:
//! next-arrival distance from a cursor (the client threshold filter),
//! per-page broadcast frequency (the `x` in the PIX cache policy), and
//! closed-form expected delays (the analytic comparator).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod assignment;
pub mod design;
pub mod indexing;
pub mod multichannel;
pub mod program;

pub use analysis::{expected_delay_by_page, ProgramAnalysis};
pub use assignment::{Assignment, DiskSpec};
pub use design::{design_disks, square_root_frequencies, DiskDesign};
pub use indexing::{optimal_m, IndexedProgram, IndexedSlot};
pub use multichannel::{hot_access_sets, ChannelConflict, MultiChannelProgram};
pub use program::{BroadcastProgram, Slot};

/// Identifier of a database page. Pages are dense indexes `0..ServerDBSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// The page index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

// A page identifier serializes as its bare index (newtype convention).
impl bpp_json::ToJson for PageId {
    fn to_json(&self) -> bpp_json::Json {
        bpp_json::ToJson::to_json(&self.0)
    }
}

impl bpp_json::FromJson for PageId {
    fn from_json(v: &bpp_json::Json) -> Result<Self, bpp_json::JsonError> {
        <u32 as bpp_json::FromJson>::from_json(v).map(PageId)
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}
